//! Figure 1's fail-over panels, narrated: crash the primary at the two
//! interesting instants and watch the cleaning thread finish the job.
//!
//! ```sh
//! cargo run --example failover
//! ```

use etx::harness::figures::{figure1, Fig1Scenario};

fn main() {
    println!("== Figure 1(c): fail-over with commit ==");
    let c = figure1(Fig1Scenario::FailoverCommit, 11);
    println!(
        "primary crashed after regD decided commit; the cleaner finished the commitment.\n\
         → client delivered attempt {} ({}) after {:.0} ms; cleaner used: {}; safety: {}\n",
        c.attempt,
        c.outcome,
        c.millis,
        c.cleaner_used,
        if c.safety_ok { "ok" } else { "VIOLATED" }
    );

    println!("== Figure 1(d): fail-over with abort ==");
    let d = figure1(Fig1Scenario::FailoverAbort, 11);
    println!(
        "primary crashed right after winning regA; the cleaner wrote (nil, abort).\n\
         → attempt {} aborted after {:.0} ms; the client retried transparently; safety: {}",
        d.attempt,
        d.millis,
        if d.safety_ok { "ok" } else { "VIOLATED" }
    );
    assert!(c.safety_ok && d.safety_ok);
    assert!(c.cleaner_used && d.cleaner_used);
}
