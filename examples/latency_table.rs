//! Regenerates the paper's Figure 8 latency table in a few seconds (a
//! lighter-weight version of `cargo bench --bench figure8`).
//!
//! ```sh
//! cargo run --release --example latency_table
//! ```

use etx::harness::figures::figure8;

fn main() {
    let table = figure8(15, 2024);
    println!("\nFigure 8 — comparing the latency of the protocols (ms):\n");
    println!("{}", table.render());
    println!("paper reference: baseline 217.4 | AR 252.3 (+16%) | 2PC 266.5 (+23%)");
}
