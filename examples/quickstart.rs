//! Quickstart: issue one exactly-once transaction through a simulated
//! three-tier system (1 client, 3 replicated application servers, 1
//! XA database) and watch it commit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use etx::base::trace::TraceKind;
use etx::harness::{MiddleTier, ScenarioBuilder, Workload};

fn main() {
    // Build the paper's evaluation topology: one client, three application
    // servers (tolerating one crash), one database — with the measured
    // environment constants of Appendix 3 (Orbix RPC + Oracle-scale costs).
    let mut scenario = ScenarioBuilder::new(MiddleTier::Etx { apps: 3 }, 42)
        .workload(Workload::BankUpdate { amount: 250 })
        .requests(1)
        .build();

    println!("topology: {:?}", scenario.topo);

    // Run until the client delivers.
    scenario.run_until_settled(1);

    for (rid, outcome, steps, at) in scenario.deliveries() {
        println!(
            "request {} delivered: outcome={outcome}, attempt={}, {} communication steps, \
             latency {:.1} ms",
            rid.request,
            rid.attempt,
            steps,
            at.as_millis_f64()
        );
    }

    // The exactly-once evidence: exactly one commit at the database.
    let commits = scenario.trace().count_kind(|k| {
        matches!(k, TraceKind::DbDecide { outcome: etx::base::value::Outcome::Commit, .. })
    });
    println!("database commits for this request: {commits} (exactly once)");

    // And the full §3 specification holds on the recorded history.
    let report = etx::harness::check(
        scenario.trace().events(),
        &scenario.topo.clients,
        etx::harness::LivenessChecks { t1: true, t2: false },
    );
    println!("e-Transaction properties: {}", if report.ok() { "all hold ✓" } else { "VIOLATED" });
}
