//! A cross-shard funds transfer on a partitioned back end.
//!
//! Four hash shards, two replicas each. The client's script is
//! *key-addressed* — it names accounts, not servers; the application
//! server's shard router splits it into one XA branch per touched shard
//! and drives the paper's vote/decide protocol across both. Mid-commit we
//! crash one branch's shard primary; the transfer still terminates with a
//! single outcome, delivered exactly once, and the shard's follower
//! converges on the committed state via asynchronous replication.
//!
//! ```sh
//! cargo run --example sharded_bank
//! ```

use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::harness::{check, LivenessChecks, MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

fn main() {
    println!("== a cross-shard transfer that loses a shard primary mid-commit ==\n");

    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0xBA4C)
        .shards(4)
        .replication(2)
        .workload(Workload::ShardedBank { accounts: 32, cross_pct: 100, amount: 10 })
        .requests(2)
        .build();

    println!(
        "topology : {} shards × {} replicas = {} database servers",
        s.shard_map.shard_count(),
        s.shard_map.replication(),
        s.topo.db_servers.len()
    );

    // Crash whichever shard primary votes first — the transfer's branch is
    // prepared (in-doubt) at that instant — and recover it 25 ms later.
    for g in 0..4 {
        let p = s.shard_primary(g);
        s.sim_mut().on_trace(
            move |ev| ev.node == p && matches!(ev.kind, TraceKind::DbVote { .. }),
            FaultAction::CrashRecover(p, Dur::from_millis(25)),
        );
    }

    let initial: i64 =
        (0..4).map(|g| s.rebuilt_committed(s.shard_primary(g)).values().sum::<i64>()).sum();

    s.run_until_settled(2);
    s.quiesce(Dur::from_millis(500));

    let deliveries = s.deliveries();
    let crashes = s.trace().count_kind(|k| matches!(k, TraceKind::Crash));
    let cross = s.cross_shard_routes();
    println!("faults   : {crashes} crash(es) injected mid-commit");
    println!("routing  : {cross} transaction(s) spanned more than one shard");
    for (rid, outcome, _, at) in &deliveries {
        println!("delivered: {rid} → {outcome} at {at}");
    }

    let total: i64 =
        (0..4).map(|g| s.rebuilt_committed(s.shard_primary(g)).values().sum::<i64>()).sum();
    println!("balance  : {initial} before, {total} after (transfers conserve money)");

    // Follower convergence: every replica of every shard agrees with its
    // primary once replication quiesces.
    for g in 0..4 {
        let primary_state = s.rebuilt_committed(s.shard_primary(g));
        let followers: Vec<_> = s.shard_replicas(g).iter().skip(1).copied().collect();
        for r in followers {
            assert_eq!(s.rebuilt_committed(r), primary_state, "shard {g} replica diverged");
        }
    }
    println!("replicas : all shard followers converged with their primaries");

    assert_eq!(deliveries.len(), 2, "both requests delivered exactly once");
    assert!(deliveries.iter().all(|(_, o, _, _)| *o == Outcome::Commit));
    assert!(cross >= 1, "the 100% transfer mix must cross shards");
    assert_eq!(initial, total);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
    println!("\nspec     : T.1 T.2 A.1 A.2 A.3 V.1 V.2 all hold ✓");
}
