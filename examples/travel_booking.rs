//! The paper's motivating travel application (§2): book a flight, a hotel
//! and a rental car — one distributed transaction across three databases —
//! repeatedly, until the flight sells out. Sold-out bookings still commit
//! and deliver an informative result *exactly once* (paper footnote 4):
//! the user is told "sold out", never charged twice, never left guessing.
//!
//! ```sh
//! cargo run --example travel_booking
//! ```

use etx::base::value::Outcome;
use etx::harness::{MiddleTier, ScenarioBuilder, Workload};

fn main() {
    // Three databases: flights, hotels, cars. Inventory is seeded by the
    // workload (50 flight seats; we only run 6 bookings here).
    let mut scenario = ScenarioBuilder::new(MiddleTier::Etx { apps: 3 }, 7)
        .dbs(3)
        .workload(Workload::Travel)
        .requests(6)
        .build();

    scenario.run_until_settled(6);

    println!("six travellers booked trips (flight + hotel + car):\n");
    for (i, (rid, outcome, _, at)) in scenario.deliveries().iter().enumerate() {
        assert_eq!(*outcome, Outcome::Commit, "e-Transactions always deliver commits");
        println!(
            "  traveller {} — request {} done at t={:.0} ms (attempt {})",
            i + 1,
            rid.request,
            at.as_millis_f64(),
            rid.attempt
        );
    }

    let report = etx::harness::check(
        scenario.trace().events(),
        &scenario.topo.clients,
        etx::harness::LivenessChecks { t1: true, t2: false },
    );
    assert!(report.ok());
    println!("\nexactly-once across 3 databases × 6 requests: specification holds ✓");
}
