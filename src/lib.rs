//! # etx — e-Transactions with Asynchronous Replication
//!
//! Facade crate: re-exports the whole workspace under one roof. See the
//! README for a guided tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use etx::base::ids::Topology;
//! let topo = Topology::new(1, 3, 1);
//! assert_eq!(topo.app_majority(), 2);
//! ```

pub use etx_base as base;
pub use etx_baselines as baselines;
pub use etx_consensus as consensus;
pub use etx_core as protocol;
pub use etx_fd as fd;
pub use etx_harness as harness;
pub use etx_rt as rt;
pub use etx_sim as sim;
pub use etx_store as store;
