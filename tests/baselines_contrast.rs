//! Cross-protocol contrast tests: the guarantees table of the paper, made
//! executable. Same workload, same fault, four protocols, four different
//! user experiences.

use etx::base::time::{Dur, Time};
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::baselines::RetryPolicy;
use etx::harness::{check, LivenessChecks, MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

fn commits(s: &etx::harness::Scenario) -> usize {
    s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
}

/// Crash the (sole/primary) application server right after the database
/// votes, in every protocol.
fn crash_after_vote(tier: MiddleTier, seed: u64) -> etx::harness::Scenario {
    let mut s = ScenarioBuilder::fast(tier, seed)
        .workload(Workload::BankUpdate { amount: 50 })
        .requests(1)
        .build();
    let victim = s.topo.app_servers[0];
    let db = s.topo.db_servers[0];
    s.sim_mut().on_trace(
        move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::Crash(victim),
    );
    s
}

#[test]
fn same_fault_four_protocols_four_outcomes() {
    // e-Transactions: delivers, exactly once.
    let mut etx_run = crash_after_vote(MiddleTier::Etx { apps: 3 }, 1);
    let out = etx_run.run_until_settled(1);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    etx_run.quiesce(Dur::from_millis(300));
    assert_eq!(etx_run.delivered_commits(), 1, "e-Transactions deliver through the crash");
    assert_eq!(commits(&etx_run), 1);

    // Primary-backup: database unblocked by the backup (needs perfect FD).
    let mut pb = crash_after_vote(MiddleTier::Pb, 2);
    pb.sim_mut()
        .run_until(|s| s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })) >= 1);
    assert!(
        pb.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })) >= 1,
        "the backup resolves the branch"
    );

    // 2PC: the database is BLOCKED until the coordinator returns.
    let mut tpc = crash_after_vote(MiddleTier::Tpc, 3);
    tpc.sim_mut().run_until_time(Time(1_500_000));
    assert_eq!(
        tpc.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })),
        0,
        "2PC leaves the branch in-doubt while the coordinator is down"
    );

    // Baseline: nothing; the user gets an exception.
    let mut base = crash_after_vote(MiddleTier::Baseline, 4);
    // (The baseline never reaches a vote — it one-phase-commits — so crash
    // at vote never fires; crash immediately instead for the contrast.)
    let server = base.topo.app_servers[0];
    base.sim_mut().crash_at(Time(1_000), server);
    base.sim_mut().run_until_time(Time(1_000_000));
    assert_eq!(
        base.trace().count_kind(|k| matches!(k, TraceKind::Exception { .. })),
        1,
        "baseline surfaces the ambiguity to the user"
    );
}

#[test]
fn tpc_coordinator_crash_blocks_where_etx_delivers() {
    // The paper's blocking argument, end to end: kill the coordinator after
    // the database votes and give both stacks a long horizon. The
    // e-Transaction replicas take over and deliver; 2PC leaves the branch
    // in-doubt for the entire horizon and the user only ever sees a
    // timeout exception.
    let mut etx_run = crash_after_vote(MiddleTier::Etx { apps: 3 }, 21);
    let out = etx_run.run_until_settled(1);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    etx_run.quiesce(Dur::from_millis(300));
    assert_eq!(etx_run.delivered_commits(), 1, "etx delivers through the coordinator crash");

    let mut tpc = crash_after_vote(MiddleTier::Tpc, 21);
    tpc.sim_mut().run_until_time(Time(5_000_000));
    assert_eq!(tpc.delivered_commits(), 0, "2PC delivers nothing while blocked");
    assert_eq!(
        tpc.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { .. })),
        0,
        "2PC's voted branch must stay in-doubt as long as the coordinator is down"
    );
    assert!(
        tpc.trace().count_kind(|k| matches!(k, TraceKind::Exception { .. })) >= 1,
        "the 2PC user times out instead of receiving a result"
    );
}

#[test]
fn property_checker_flags_naive_retry_duplicate_commit() {
    // The unreliable baseline's signature failure: crash the coordinator
    // right after the database commits, let the client naively resend, and
    // the same request commits twice. The §3 property checker must call
    // that out as an A.2 (at-most-once) violation.
    let mut tpc = ScenarioBuilder::fast(MiddleTier::Tpc, 31)
        .workload(Workload::BankUpdate { amount: 100 })
        .client_retry(RetryPolicy::NaiveResend { max_retries: 4 })
        .requests(1)
        .build();
    let coord = tpc.topo.app_servers[0];
    let db = tpc.topo.db_servers[0];
    tpc.sim_mut().on_trace(
        move |ev| {
            ev.node == db && matches!(ev.kind, TraceKind::DbDecide { outcome: Outcome::Commit, .. })
        },
        FaultAction::CrashRecover(coord, Dur::from_millis(200)),
    );
    tpc.sim_mut().run_until(|s| {
        s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Commit, .. }))
            >= 2
    });
    tpc.quiesce(Dur::from_millis(100));
    assert!(commits(&tpc) >= 2, "the fault schedule must actually produce a double charge");

    let report = check(tpc.trace().events(), &tpc.topo.clients, LivenessChecks::default());
    assert!(!report.ok(), "the checker must reject the duplicated execution");
    assert!(
        report.violations.iter().any(|v| v.contains("A.2")),
        "the duplicate commit must be flagged as an A.2 violation, got: {:?}",
        report.violations
    );

    // Control: the e-Transaction stack under the same fault passes clean.
    let mut etx_run = crash_after_vote(MiddleTier::Etx { apps: 3 }, 31);
    etx_run.run_until_settled(1);
    etx_run.quiesce(Dur::from_millis(300));
    check(etx_run.trace().events(), &etx_run.topo.clients, LivenessChecks::default()).assert_ok();
}

#[test]
fn etx_client_never_sees_exceptions() {
    // Under a harsh schedule the e-Transaction client still never raises:
    // that is the liveness dimension the abstraction adds (§1).
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 9)
        .workload(Workload::BankUpdate { amount: 1 })
        .requests(3)
        .build();
    let a1 = s.topo.primary();
    s.sim_mut().crash_at(Time(5_000), a1);
    let db = s.topo.db_servers[0];
    s.sim_mut().crash_at(Time(15_000), db);
    s.sim_mut().recover_at(Time(45_000), db);
    let out = s.run_until_settled(3);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    assert_eq!(
        s.trace().count_kind(|k| matches!(k, TraceKind::Exception { .. })),
        0,
        "no exception ever reaches the e-Transaction user"
    );
    assert_eq!(s.delivered_commits(), 3);
}

#[test]
fn pb_and_etx_have_equal_failure_free_message_depth() {
    // The paper's analytic claim, cross-checked outside figure7: PB and AR
    // impose the same client-visible step count in nice runs.
    let run = |tier| {
        let mut s = ScenarioBuilder::fast(tier, 5).requests(1).build();
        s.run_until_settled(1);
        s.deliveries()[0].2
    };
    assert_eq!(run(MiddleTier::Etx { apps: 3 }), run(MiddleTier::Pb));
}
