//! The commit pipeline end to end: batched consensus slots, group WAL
//! appends, batched replica shipping — checked against the full §3
//! specification, including mid-batch crashes.

use etx::base::config::BatchingConfig;
use etx::base::ids::ResultId;
use etx::base::time::{Dur, Time};
use etx::base::trace::TraceKind;
use etx::base::wal::{StableRecord, LOG_WAL};
use etx::harness::{
    check, run_chaos, run_mid_batch_chaos, ChaosOptions, LivenessChecks, MiddleTier,
    ScenarioBuilder, Workload,
};
use etx::sim::RunOutcome;

#[test]
fn open_loop_burst_fills_real_batches_and_preserves_the_spec() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4101)
        .shards(4)
        .clients(2)
        .requests(12)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .workload(Workload::OpenLoopBurst { accounts: 32, amount: 1 })
        .build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, RunOutcome::Predicate, "every burst request must settle");
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.delivered_commits(), expected);
    if std::env::var("ETX_BATCH_SIZE").is_err() {
        // (skipped when the CI batching matrix pins the depth — at
        // ETX_BATCH_SIZE=1 no batches can form, by design)
        assert!(
            s.batched_slots() >= 1,
            "an open-loop burst through an 8-deep pipeline must put >1 request in some slot"
        );
        assert!(s.group_appends() >= 1, "multi-request slots must reach the WAL as group appends");
    }
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn batch_of_one_reproduces_the_unbatched_protocol_exactly() {
    // A sequential client under a deep pipeline must behave byte-for-byte
    // like the paper's per-request protocol: the idle-flush rule turns
    // every outcome into a batch of one in the same event that queued it.
    let run = |size: usize, window_ms: u64| {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4102)
            .workload(Workload::BankUpdate { amount: 7 })
            .requests(6)
            .batching(BatchingConfig::new(size, Dur::from_millis(window_ms)))
            .build();
        let out = s.run_until_settled(6);
        assert_eq!(out, RunOutcome::Predicate);
        s.quiesce(Dur::from_millis(200));
        s
    };
    let deep = run(64, 2);
    let degenerate = run(1, 0);
    assert_eq!(deep.delivered_commits(), 6);
    assert_eq!(
        deep.trace().events(),
        degenerate.trace().events(),
        "identical traces: the single-request path is a batch of one"
    );
    assert_eq!(deep.batched_slots(), 0, "a sequential client never forms real batches");
}

#[test]
fn deep_pipeline_outcommits_per_request_slots_under_load() {
    // The tentpole's point, in miniature: same open-loop workload, same
    // seed — batching must deliver strictly more committed requests per
    // simulated second than per-request slots.
    if std::env::var("ETX_BATCH_SIZE").is_ok() {
        // The CI batching matrix pins every scenario to one batch size,
        // which makes a batch-1-vs-batch-16 comparison vacuous.
        return;
    }
    let throughput = |batch: usize| {
        let mut b = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4103)
            .shards(4)
            .clients(4)
            .requests(16)
            .workload(Workload::OpenLoopBurst { accounts: 64, amount: 1 });
        if batch > 1 {
            b = b.batching(BatchingConfig::new(batch, Dur::from_millis(1)));
        }
        let mut s = b.build();
        let expected = s.requests as usize;
        let out = s.run_until_settled(expected);
        assert_eq!(out, RunOutcome::Predicate, "batch={batch} run must settle");
        check(s.trace().events(), &s.topo.clients, LivenessChecks::default()).assert_ok();
        s.delivered_commits() as f64 / s.now().as_millis_f64()
    };
    let per_request = throughput(1);
    let batched = throughput(16);
    assert!(
        batched > per_request,
        "16-deep pipeline ({batched:.4} req/ms) must beat per-request slots \
         ({per_request:.4} req/ms)"
    );
}

#[test]
fn mid_batch_primary_crash_chaos_holds_the_spec() {
    // Crash the default primary the moment it applies its first
    // multi-request batch, and cycle a shard primary on its first group
    // append. A decided batch must stay all-or-nothing per request: every
    // request terminates exactly once with its slot outcome.
    let opts = ChaosOptions {
        apps: 3,
        clients: 2,
        requests: 8,
        shards: Some(2),
        replication: 2,
        batch_size: 8,
        ..ChaosOptions::default()
    };
    let mut batched_runs = 0;
    for seed in 0..12 {
        let out = run_mid_batch_chaos(seed, &opts);
        out.assert_ok();
        if out.batched_slots > 0 {
            batched_runs += 1;
        }
    }
    if std::env::var("ETX_BATCH_SIZE").is_err() {
        assert!(
            batched_runs >= 6,
            "most chaos runs must actually exercise multi-request batches \
             (got {batched_runs}/12)"
        );
    }
}

#[test]
fn generic_chaos_stays_green_with_batching_enabled() {
    let opts = ChaosOptions {
        clients: 2,
        requests: 3,
        shards: Some(4),
        replication: 2,
        batch_size: 16,
        ..ChaosOptions::default()
    };
    for seed in 0..10 {
        run_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn follower_recovering_into_an_empty_batch_window_catches_up_as_a_noop() {
    // Every batched commit settles and ships BEFORE the follower cycles:
    // its WAL restores the replication cursor on recovery, so the catch-up
    // snapshot it pulls carries nothing new (the batch window since its
    // crash is empty). The stale snapshot must be ignored — converged
    // state, zero re-applies — rather than re-adopted wholesale.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4104)
        .shards(2)
        .replication(2)
        .clients(2)
        .requests(8)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .workload(Workload::OpenLoopBurst { accounts: 16, amount: 1 })
        .build();
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(400)); // every batch fully shipped and applied
    let follower = s.shard_replicas(0)[1];
    let settled = s.rebuilt_committed(follower);
    assert_eq!(settled, s.rebuilt_committed(s.shard_primary(0)), "converged before the cycle");
    let now = s.now();
    let back_at = Time(now.0 + 5_000);
    s.sim_mut().crash_at(Time(now.0 + 1_000), follower);
    s.sim_mut().recover_at(back_at, follower);
    s.quiesce(Dur::from_millis(100)); // recovery + sync round trips
    assert_eq!(
        s.rebuilt_committed(follower),
        settled,
        "an empty-window catch-up must not change the follower's state"
    );
    let reapplied = s
        .trace()
        .events()
        .iter()
        .filter(|e| {
            e.node == follower
                && e.at >= back_at
                && matches!(e.kind, TraceKind::DbReplicated { .. })
        })
        .count();
    assert_eq!(reapplied, 0, "nothing shipped since the crash, so nothing may be re-applied");
}

#[test]
fn catch_up_snapshot_straddling_a_partially_shipped_batch_applies_exactly_once() {
    // Cycle a follower while batched commits are in full flight: the
    // ApplyBatch messages in the air at the crash are lost, the recovery
    // snapshot lands mid-stream, and the shipped tail arriving after it
    // must mesh with the snapshot — every batch item applied exactly once,
    // none skipped, none doubled.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4106)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(8)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .workload(Workload::OpenLoopBurst { accounts: 32, amount: 1 })
        .build();
    // Crash the follower the instant its primary commits for the first
    // time: the shipment leaving in that same event is lost in flight, so
    // the recovery snapshot is guaranteed to cover writes the follower
    // never saw — whatever the pipeline depth.
    let follower = s.shard_replicas(0)[1];
    let shard0_primary = s.shard_primary(0);
    s.sim_mut().on_trace(
        move |ev| {
            ev.node == shard0_primary
                && matches!(
                    ev.kind,
                    TraceKind::DbDecide { outcome: etx::base::value::Outcome::Commit, .. }
                )
        },
        etx::sim::FaultAction::CrashRecover(follower, Dur::from_millis(4)),
    );
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(800));
    for g in 0..2 {
        let primary_state = s.rebuilt_committed(s.shard_primary(g));
        let followers: Vec<_> = s.shard_replicas(g).iter().skip(1).copied().collect();
        for r in followers {
            assert_eq!(s.rebuilt_committed(r), primary_state, "replica {r} of shard {g} diverged");
        }
    }
    // Exactly-once, straight from the follower's durable log: replication
    // seqs must be strictly increasing (a double-apply would repeat one, a
    // skipped item would still break convergence above), and the recovery
    // must actually have adopted a fresh snapshot to jump the gap the
    // crash tore into the apply stream.
    let log = s.sim().storage(follower).read(LOG_WAL);
    let repl: Vec<(u64, ResultId)> = log
        .iter()
        .flat_map(|r| r.leaves())
        .filter_map(|r| match r {
            StableRecord::Replicated { seq, rid, .. } => Some((*seq, *rid)),
            _ => None,
        })
        .collect();
    assert!(
        repl.windows(2).all(|w| w[0].0 < w[1].0),
        "replication seqs in the follower's WAL must be strictly increasing: {repl:?}"
    );
    assert!(
        repl.iter().any(|(_, rid)| *rid == ResultId::repl_snapshot()),
        "the follower must have adopted a catch-up snapshot after its mid-run crash"
    );
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn chaos_seed_varies_faults_independently_of_the_run_seed() {
    // The chaos/workload RNG split: the same run seed with different chaos
    // seeds yields different fault schedules (and both must still satisfy
    // the spec). Before the split, fault draws and workload choice shared
    // one stream, so fault-budget changes silently changed the workload.
    let base = ChaosOptions { requests: 3, ..ChaosOptions::default() };
    let a =
        run_chaos(77, &ChaosOptions { chaos_seed: Some(1), max_app_crashes: 1, ..base.clone() });
    let b =
        run_chaos(77, &ChaosOptions { chaos_seed: Some(2), max_app_crashes: 1, ..base.clone() });
    a.assert_ok();
    b.assert_ok();
    assert_ne!(a.faults, b.faults, "distinct chaos seeds must produce distinct schedules");
}
