//! Chaos: randomized fault schedules, each fully derived from a seed, each
//! checked against the complete §3 specification. A failing seed is a
//! one-line repro.

use etx::harness::{run_chaos, ChaosOptions};

#[test]
fn hundred_chaos_schedules_on_default_options() {
    let opts = ChaosOptions::default();
    for seed in 0..100u64 {
        run_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn chaos_with_more_crashes_and_five_replicas() {
    let opts = ChaosOptions {
        apps: 5,
        max_app_crashes: 2, // still a minority of 5
        max_db_cycles: 3,
        ..ChaosOptions::default()
    };
    for seed in 0..40u64 {
        run_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn chaos_with_contending_clients() {
    let opts = ChaosOptions {
        clients: 2,
        requests: 2,
        max_false_suspicions: 3,
        ..ChaosOptions::default()
    };
    for seed in 0..40u64 {
        run_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn chaos_with_lossy_network_and_two_dbs() {
    let opts = ChaosOptions { dbs: 2, loss_rate: 0.1, max_db_cycles: 2, ..ChaosOptions::default() };
    for seed in 0..40u64 {
        run_chaos(seed, &opts).assert_ok();
    }
}
