//! The simulation kernel's reproducibility contract: one seed, one
//! history. Every debugging and property-checking workflow in this repo
//! leans on replayability, so this guard runs the same scenario twice and
//! demands byte-identical traces — and demands that different seeds
//! actually explore different interleavings.

use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::harness::{MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

/// A non-trivial run: three replicas, two requests, and a primary crash
/// injected mid-protocol, so the trace covers failover, not just the happy
/// path. Returns the full trace as bytes.
fn run_traced(seed: u64) -> Vec<u8> {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .workload(Workload::BankUpdate { amount: 7 })
        .requests(2)
        .build();
    let victim = s.topo.primary();
    let db = s.topo.db_servers[0];
    s.sim_mut().on_trace(
        move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::Crash(victim),
    );
    s.run_until_settled(2);
    s.quiesce(Dur::from_millis(50));
    format!("{:#?}", s.trace().events()).into_bytes()
}

/// The sharded variant: 4 shards × 2 replicas, cross-shard transfers, and
/// a crash/recovery cycle on one shard's primary — covers shard routing,
/// the multi-branch decide path, and intra-shard replication catch-up.
fn run_traced_sharded(seed: u64) -> Vec<u8> {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(4)
        .replication(2)
        .workload(Workload::ShardedBank { accounts: 32, cross_pct: 100, amount: 5 })
        .requests(2)
        .build();
    let victim = s.shard_primary(0);
    s.sim_mut().on_trace(
        move |ev| ev.node == victim && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::CrashRecover(victim, etx::base::time::Dur::from_millis(20)),
    );
    s.run_until_settled(2);
    s.quiesce(Dur::from_millis(50));
    format!("{:#?}", s.trace().events()).into_bytes()
}

#[test]
fn same_seed_replays_byte_identical_traces() {
    let first = run_traced(0xE7A);
    let second = run_traced(0xE7A);
    assert_eq!(first, second, "two runs with one seed diverged: the sim kernel broke determinism");
}

#[test]
fn same_seed_replays_byte_identical_sharded_traces() {
    let first = run_traced_sharded(0x5A4D);
    let second = run_traced_sharded(0x5A4D);
    assert_eq!(
        first, second,
        "sharded runs with one seed diverged: routing or replication broke determinism"
    );
}

#[test]
fn different_seeds_explore_different_sharded_interleavings() {
    assert_ne!(run_traced_sharded(21), run_traced_sharded(22));
}

#[test]
fn different_seeds_explore_different_interleavings() {
    let seeds = [1u64, 2, 3];
    let traces: Vec<Vec<u8>> = seeds.iter().map(|&s| run_traced(s)).collect();
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            assert_ne!(
                traces[i], traces[j],
                "seeds {} and {} produced identical traces: seeding has no effect",
                seeds[i], seeds[j]
            );
        }
    }
}
