//! The simulation kernel's reproducibility contract: one seed, one
//! history. Every debugging and property-checking workflow in this repo
//! leans on replayability, so this guard runs the same scenario twice and
//! demands byte-identical traces — and demands that different seeds
//! actually explore different interleavings.

use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::harness::{MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

/// A non-trivial run: three replicas, two requests, and a primary crash
/// injected mid-protocol, so the trace covers failover, not just the happy
/// path. Returns the full trace as bytes.
fn run_traced(seed: u64) -> Vec<u8> {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .workload(Workload::BankUpdate { amount: 7 })
        .requests(2)
        .build();
    let victim = s.topo.primary();
    let db = s.topo.db_servers[0];
    s.sim.on_trace(
        move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::Crash(victim),
    );
    s.run_until_settled(2);
    s.quiesce(Dur::from_millis(50));
    format!("{:#?}", s.sim.trace().events()).into_bytes()
}

#[test]
fn same_seed_replays_byte_identical_traces() {
    let first = run_traced(0xE7A);
    let second = run_traced(0xE7A);
    assert_eq!(first, second, "two runs with one seed diverged: the sim kernel broke determinism");
}

#[test]
fn different_seeds_explore_different_interleavings() {
    let seeds = [1u64, 2, 3];
    let traces: Vec<Vec<u8>> = seeds.iter().map(|&s| run_traced(s)).collect();
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            assert_ne!(
                traces[i], traces[j],
                "seeds {} and {} produced identical traces: seeding has no effect",
                seeds[i], seeds[j]
            );
        }
    }
}
