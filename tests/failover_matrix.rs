//! Crash-point matrix: kill the primary at *every* observable protocol
//! stage and check that the system still satisfies the full specification
//! and the client still delivers (T.1 under fail-over).

use etx::base::time::Dur;
use etx::base::trace::{Component, TraceKind};
use etx::harness::{check, LivenessChecks, MiddleTier, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

#[derive(Debug, Clone, Copy)]
enum Stage {
    OnRequestArrival,
    AfterRegAWrite,
    AfterSqlAtDb,
    AfterDbVote,
    AfterRegDWrite,
    AfterDbCommit,
}

const STAGES: [Stage; 6] = [
    Stage::OnRequestArrival,
    Stage::AfterRegAWrite,
    Stage::AfterSqlAtDb,
    Stage::AfterDbVote,
    Stage::AfterRegDWrite,
    Stage::AfterDbCommit,
];

fn run_stage(stage: Stage, seed: u64) {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .workload(Workload::BankUpdate { amount: 9 })
        .requests(1)
        .build();
    let a1 = s.topo.primary();
    let pred: Box<dyn FnMut(&etx::base::trace::TraceEvent) -> bool> = match stage {
        Stage::OnRequestArrival => Box::new(move |ev| {
            ev.node == a1 && matches!(ev.kind, TraceKind::Span { comp: Component::Start, .. })
        }),
        Stage::AfterRegAWrite => Box::new(move |ev| {
            ev.node == a1 && matches!(ev.kind, TraceKind::Span { comp: Component::LogStart, .. })
        }),
        Stage::AfterSqlAtDb => {
            Box::new(move |ev| matches!(ev.kind, TraceKind::Span { comp: Component::Sql, .. }))
        }
        Stage::AfterDbVote => Box::new(move |ev| matches!(ev.kind, TraceKind::DbVote { .. })),
        Stage::AfterRegDWrite => Box::new(move |ev| {
            ev.node == a1 && matches!(ev.kind, TraceKind::Span { comp: Component::LogOutcome, .. })
        }),
        Stage::AfterDbCommit => Box::new(move |ev| matches!(ev.kind, TraceKind::DbDecide { .. })),
    };
    s.sim_mut().on_trace(pred, FaultAction::Crash(a1));
    let out = s.run_until_settled(1);
    assert_eq!(
        out,
        etx::sim::RunOutcome::Predicate,
        "stage {stage:?} seed {seed}: client must still deliver (T.1)"
    );
    s.quiesce(Dur::from_millis(400));
    assert_eq!(s.delivered_commits(), 1, "stage {stage:?} seed {seed}");
    // Exactly one commit — never zero (lost) or two (duplicated).
    assert_eq!(s.db_commits(), 1, "stage {stage:?} seed {seed}: A.2");
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn primary_crash_at_every_stage_preserves_exactly_once() {
    for (i, stage) in STAGES.iter().enumerate() {
        for seed in 0..3u64 {
            run_stage(*stage, 1000 + i as u64 * 17 + seed);
        }
    }
}

#[test]
fn double_crash_still_tolerated_with_five_replicas() {
    // Five replicas tolerate two crashes: kill the primary at regA and the
    // second server shortly after.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 5 }, 2024)
        .workload(Workload::BankUpdate { amount: 3 })
        .requests(1)
        .build();
    let a1 = s.topo.app_servers[0];
    let a2 = s.topo.app_servers[1];
    s.sim_mut().on_trace(
        move |ev| {
            ev.node == a1 && matches!(ev.kind, TraceKind::Span { comp: Component::LogStart, .. })
        },
        FaultAction::Crash(a1),
    );
    s.sim_mut().on_trace(
        move |ev| matches!(ev.kind, TraceKind::CleanerTakeover { .. }) && ev.node == a2,
        FaultAction::Crash(a2),
    );
    let out = s.run_until_settled(1);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(400));
    assert_eq!(s.db_commits(), 1);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn db_crash_at_vote_and_at_decide_points() {
    for (i, kind) in ["vote", "decide"].iter().enumerate() {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 3000 + i as u64)
            .workload(Workload::BankUpdate { amount: 2 })
            .requests(1)
            .build();
        let db = s.topo.db_servers[0];
        let pred: Box<dyn FnMut(&etx::base::trace::TraceEvent) -> bool> = if i == 0 {
            Box::new(move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }))
        } else {
            Box::new(move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbDecide { .. }))
        };
        s.sim_mut().on_trace(pred, FaultAction::CrashRecover(db, Dur::from_millis(25)));
        let out = s.run_until_settled(1);
        assert_eq!(out, etx::sim::RunOutcome::Predicate, "{kind}: must deliver");
        s.quiesce(Dur::from_millis(400));
        check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true })
            .assert_ok();
    }
}

#[test]
fn false_suspicion_storm_costs_only_aborts_never_safety() {
    // Every server suspects the (alive!) primary for a while — the regime
    // where "all application servers try to concurrently commit or abort a
    // result" (§5, active-replication mode). Safety must hold; the client
    // must still deliver.
    use etx::base::time::Time;
    use etx::fd::ForcedSuspicion;
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 4001)
        .workload(Workload::BankUpdate { amount: 8 })
        .requests(2)
        .force_suspicions(vec![ForcedSuspicion {
            peer: etx::base::ids::NodeId(1), // the default primary
            from: Time(2_000),
            until: Time(40_000),
        }])
        .build();
    let out = s.run_until_settled(2);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(400));
    assert_eq!(s.delivered_commits(), 2);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}
