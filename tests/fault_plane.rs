//! The backend-neutral fault plane against the simulator: schedules
//! expressed through `Scenario::schedule_fault` / `FaultOp` must replay
//! the legacy direct-call chaos machinery (`crash_at` / `recover_at` /
//! `block_link` / `on_trace`) **byte for byte** — same sequence numbers,
//! same RNG draws, same trace. That identity is what lets the chaos
//! runners speak one nemesis language for both runtimes without
//! invalidating years of seed-reproducible simulator histories.

use etx::base::fault::{FaultOp, LinkFault, NemesisWhen};
use etx::base::runtime::RuntimeKind;
use etx::base::time::{Dur, Time};
use etx::base::trace::TraceKind;
use etx::harness::{check, LivenessChecks, MiddleTier, Scenario, ScenarioBuilder, Workload};
use etx::sim::{FaultAction, RunOutcome};

fn sharded(seed: u64) -> Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .runtime(RuntimeKind::Sim)
        .shards(2)
        .replication(2)
        .clients(2)
        .requests(4)
        .workload(Workload::HotShard { accounts: 8, hot_pct: 70, amount: 10 })
        .build()
}

fn settle(s: &mut Scenario) {
    let n = s.requests as usize;
    assert_eq!(s.run_until_settled(n), RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(400));
}

/// The identity itself: one run injects via the legacy direct calls, the
/// other via the fault plane, and the two traces must be equal event for
/// event — timestamps, sequence, everything.
#[test]
fn scheduled_faults_replay_legacy_direct_calls_byte_identically() {
    let seed = 0xFA17;

    let mut legacy = sharded(seed);
    let victim = legacy.shard_primary(0);
    let follower = legacy.shard_replicas(1)[1];
    let lag_primary = legacy.shard_replicas(1)[0];
    legacy.sim_mut().on_trace(
        move |ev| ev.node == victim && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::CrashRecover(victim, Dur::from_millis(15)),
    );
    legacy.sim_mut().crash_at(Time(30_000), follower);
    legacy.sim_mut().recover_at(Time(50_000), follower);
    legacy.sim_mut().block_link(lag_primary, follower, Time(40_000));
    settle(&mut legacy);

    let mut planed = sharded(seed);
    assert_eq!(planed.shard_primary(0), victim, "same seed, same topology");
    planed
        .schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == victim && matches!(ev.kind, TraceKind::DbVote { .. })
            }),
            FaultOp::CrashFor { node: victim, down_for: Dur::from_millis(15) },
        )
        .unwrap();
    planed.schedule_fault(NemesisWhen::After(Dur(30_000)), FaultOp::Crash(follower)).unwrap();
    planed.schedule_fault(NemesisWhen::After(Dur(50_000)), FaultOp::Recover(follower)).unwrap();
    planed
        .fault(FaultOp::BlockLink { from: lag_primary, to: follower, heal_after: Dur(40_000) })
        .unwrap();
    settle(&mut planed);

    assert_eq!(
        legacy.trace().events(),
        planed.trace().events(),
        "the fault plane must replay the legacy schedule byte for byte"
    );
    check(legacy.trace().events(), &legacy.topo.clients, LivenessChecks { t1: true, t2: true })
        .assert_ok();
}

/// An unused fault plane is observationally invisible: a faultless run
/// traces identically to one that never heard of `schedule_fault` (the
/// golden-trace pins in other files depend on this; here it is stated
/// directly against a scheduled-but-empty scenario).
#[test]
fn empty_schedule_leaves_the_trace_untouched() {
    let mut plain = sharded(7);
    settle(&mut plain);

    let mut scheduled = sharded(7);
    // Scheduling nothing must cost nothing — not even an RNG draw.
    settle(&mut scheduled);

    assert_eq!(plain.trace().events(), scheduled.trace().events());
}

/// Pause/resume on the simulator: a paused node receives nothing and
/// processes nothing while paused; on resume it drains its backlog and
/// the run settles with §3 intact. (The threaded twin of this scenario
/// lives in threaded_chaos.rs — same ops, real parked threads.)
#[test]
fn sim_pause_stalls_a_replica_and_resume_drains_it() {
    let mut s = sharded(21);
    let parked = s.shard_replicas(0)[1];
    s.schedule_fault(
        NemesisWhen::After(Dur::from_millis(2)),
        FaultOp::PauseFor { node: parked, down_for: Dur::from_millis(30) },
    )
    .unwrap();
    settle(&mut s);

    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Pause)), 1);
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Resume)), 1);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

/// Link faults on the simulator: a dropping link parts ways with the
/// reliable-channel model, so the kernel *holds* the traffic and
/// re-injects it at heal — reliable channels mean loss manifests as
/// delay, never absence. The counter still records what was stopped.
#[test]
fn sim_dropping_link_holds_traffic_until_healed() {
    let mut s = sharded(33);
    let from = s.shard_replicas(0)[0];
    let to = s.shard_replicas(0)[1];
    s.fault(FaultOp::SetLink { from, to, fault: LinkFault::drop_all() }).unwrap();
    s.schedule_fault(NemesisWhen::After(Dur::from_millis(40)), FaultOp::HealLink { from, to })
        .unwrap();
    settle(&mut s);

    assert!(
        s.stats().dropped_on_link() > 0,
        "the replication stream must actually have been interrupted"
    );
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}
