//! Extensions beyond the paper's core: garbage collection of register
//! arrays (§5 names it as open) and the adaptive client-routing flag.

use etx::base::config::ProtocolConfig;
use etx::base::time::{Dur, Time};
use etx::base::trace::TraceKind;
use etx::harness::{check, LivenessChecks, MiddleTier, ScenarioBuilder, Workload};

#[test]
fn long_request_stream_stays_correct_with_gc() {
    // 30 sequential requests: GC must not break exactly-once, and the run
    // must stay healthy end to end (memory boundedness is asserted
    // indirectly — GC removes terminated attempts, so replays/duplicates
    // would surface as property violations if the bookkeeping were wrong).
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 881)
        .workload(Workload::BankUpdate { amount: 1 })
        .requests(30)
        .build();
    let out = s.run_until_settled(30);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.delivered_commits(), 30);
    assert_eq!(s.db_commits(), 30);
    // The register bank must shed decision-log slots as the client's
    // watermark advances — a long stream may not accumulate one consensus
    // instance per slot forever.
    assert!(
        s.trace().count_kind(|k| matches!(k, TraceKind::SlotGc { .. })) > 0,
        "settled decision-log slots must be garbage-collected"
    );
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn gc_with_failover_in_the_middle_of_the_stream() {
    // GC must not erase state the cleaner still needs: crash the primary
    // mid-stream and keep going.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 883)
        .workload(Workload::BankUpdate { amount: 1 })
        .requests(10)
        .build();
    let a1 = s.topo.primary();
    s.sim_mut().crash_at(Time(20_000), a1);
    let out = s.run_until_settled(10);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.delivered_commits(), 10);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn adaptive_routing_recovers_faster_after_primary_death() {
    // With route_to_last_responder the client skips the dead default
    // primary on retries; the total time for a stream of requests after
    // the primary's crash must strictly beat the paper-faithful policy
    // (which pays one back-off per request).
    let run = |adaptive: bool| {
        let mut pcfg = ProtocolConfig {
            client_backoff: Dur::from_millis(30),
            client_rebroadcast: Dur::from_millis(20),
            client_rebroadcast_max: Dur::from_millis(20),
            terminate_retry: Dur::from_millis(10),
            cleaner_interval: Dur::from_millis(5),
            consensus_resync: Dur::from_millis(8),
            consensus_round_patience: Dur::from_millis(4),
            route_to_last_responder: adaptive,
            features: etx_base::config::FeatureSet::default(),
        };
        pcfg.route_to_last_responder = adaptive;
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 887)
            .protocol(pcfg)
            .workload(Workload::BankUpdate { amount: 1 })
            .requests(6)
            .build();
        let a1 = s.topo.primary();
        s.sim_mut().crash_at(Time(0), a1);
        let out = s.run_until_settled(6);
        assert_eq!(out, etx::sim::RunOutcome::Predicate);
        s.now()
    };
    let faithful = run(false);
    let adaptive = run(true);
    assert!(
        adaptive < faithful,
        "adaptive routing ({adaptive}) must beat per-request back-off ({faithful})"
    );
}

#[test]
fn client_retry_trace_reflects_attempt_progression() {
    // AlwaysDoomed: attempts 1..k abort; ClientRetry events must carry
    // strictly increasing attempt numbers.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 889)
        .workload(Workload::AlwaysDoomed)
        .requests(1)
        .build();
    s.sim_mut().run_until(|sim| {
        sim.trace().count_kind(|k| matches!(k, TraceKind::ClientRetry { .. })) >= 4
    });
    let attempts: Vec<u32> = s
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::ClientRetry { rid } => Some(rid.attempt),
            _ => None,
        })
        .collect();
    assert!(attempts.windows(2).all(|w| w[1] == w[0] + 1), "{attempts:?}");
}
