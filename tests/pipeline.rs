//! The pipelined decision log, end to end.
//!
//! Four families of guarantees:
//!
//! * **compatibility** — depth 1 *is* the single-slot pipeline: a depth-1
//!   run (and a deep window that never fills) replays the pre-pipeline
//!   trace byte for byte;
//! * **overlap shape** — under load, a deep window genuinely keeps ≥ 2
//!   decision-log slots in consensus at once (the `PipelineWindow` trace
//!   high-water mark), ships a `SpecExec` for every proposed slot, and
//!   still applies strictly in slot order;
//! * **equivalence** — whatever the window depth, the pipeline commits
//!   exactly what the depth-1 strict run commits: same delivered counts,
//!   same durable per-shard state, rebuilt from the WAL;
//! * **fault tolerance** — crashing the proposing primary with ≥ 2
//!   undecided slots in flight, or a shard primary holding a stack of
//!   speculation buffers, leaves the full §3 specification intact and the
//!   replayed values equal to the depth-1 run's.

use etx::base::config::{BatchingConfig, PipelineConfig, SpeculationConfig};
use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::harness::{check, LivenessChecks, MiddleTier, Scenario, ScenarioBuilder, Workload};
use etx::sim::{FaultAction, RunOutcome};
use std::collections::BTreeSet;

/// The canonical pipelining workload: an open-loop burst through small
/// batches, so consecutive flushes land in separate slots and a deep
/// window has rounds to overlap. Every knob is explicit, so the scenario
/// means the same thing under every CI matrix leg.
fn burst(seed: u64, depth: usize, spec: SpeculationConfig) -> Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(2)
        .replication(2)
        .clients(8)
        .requests(32)
        .batching(BatchingConfig::new(2, Dur::from_millis(1)))
        .pipeline(PipelineConfig::new(depth))
        .speculation(spec)
        .workload(Workload::OpenLoopBurst { accounts: 32, amount: 1 })
        .build()
}

/// Runs a scenario to settlement, checks §3, and returns it for state
/// inspection.
fn settle(mut s: Scenario) -> Scenario {
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, RunOutcome::Predicate, "every burst request must settle");
    s.quiesce(Dur::from_millis(400));
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
    s
}

/// Asserts every replica of every shard rebuilds from its WAL to the
/// reference run's committed state — the strongest equivalence a
/// reordering optimisation can be held to (the burst workload commits
/// every request exactly once, so final state is schedule-independent).
fn assert_matches_reference(run: &mut Scenario, reference: &mut Scenario, label: &str) {
    for shard in 0..2 {
        let expect = reference.rebuilt_committed(reference.shard_primary(shard));
        let replicas: Vec<_> = run.shard_replicas(shard).to_vec();
        for replica in replicas {
            assert_eq!(
                run.rebuilt_committed(replica),
                expect,
                "{label}: replica {replica} of shard {shard} diverged from the depth-1 run"
            );
        }
    }
}

#[test]
fn depth_one_replays_the_single_slot_pipeline_byte_for_byte() {
    // A sequential client never has two outcomes pending at once, so the
    // window never fills whatever its depth: explicit depth 1, a deep
    // depth-8 window, and the builder default must all produce the same
    // trace, byte for byte — the feature-off compatibility contract.
    let run = |depth: Option<usize>| {
        let mut b = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 5101)
            .workload(Workload::BankUpdate { amount: 7 })
            .requests(6)
            .batching(BatchingConfig::new(64, Dur::from_millis(2)));
        if let Some(d) = depth {
            b = b.pipeline(PipelineConfig::new(d));
        }
        let mut s = b.build();
        let out = s.run_until_settled(6);
        assert_eq!(out, RunOutcome::Predicate);
        s.quiesce(Dur::from_millis(200));
        s
    };
    let pinned = run(Some(1));
    let deep = run(Some(8));
    let ambient = run(None);
    assert_eq!(pinned.delivered_commits(), 6);
    assert_eq!(
        pinned.trace().events(),
        deep.trace().events(),
        "a window a sequential client cannot fill must leave no trace of itself"
    );
    assert_eq!(
        pinned.trace().events(),
        ambient.trace().events(),
        "identical traces: depth 1 is the pre-pipeline protocol"
    );
    assert_eq!(deep.pipeline_window_peak(), 0, "no overlap ever happened");
}

#[test]
fn deep_window_overlaps_rounds_and_commits_the_depth_one_state() {
    // Same seed, depth 4 (speculating) vs depth 1 (strict): the deep run
    // must genuinely overlap consensus rounds — ≥ 2 undecided slots in
    // flight at its peak — and ship SpecExec frames for more than one
    // distinct slot, yet end in exactly the strict run's durable state.
    let mut deep = settle(burst(5201, 4, SpeculationConfig::on()));
    let mut one = settle(burst(5201, 1, SpeculationConfig::disabled()));
    let expected = deep.requests as usize;
    assert_eq!(deep.delivered_commits(), expected);
    assert_eq!(one.delivered_commits(), expected);
    assert!(
        deep.pipeline_window_peak() >= 2,
        "a depth-4 open-loop burst must keep ≥2 slots in consensus at once \
         (peak {})",
        deep.pipeline_window_peak()
    );
    assert_eq!(one.pipeline_window_peak(), 0, "depth 1 never overlaps rounds");
    let spec_slots: BTreeSet<u64> = deep
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::SpecExec { slot, .. } => Some(slot),
            _ => None,
        })
        .collect();
    assert!(
        spec_slots.len() >= 2,
        "every proposed slot in the window ships for speculation, not just the head \
         (got slots {spec_slots:?})"
    );
    assert!(deep.spec_hits() >= 1, "fault-free overlap must promote at least one batch");
    assert_matches_reference(&mut deep, &mut one, "deep window");
}

#[test]
fn primary_crash_with_a_deep_window_replays_to_the_depth_one_values() {
    // The chaos sweep of the pipelined window: crash the default primary
    // the moment *it* reports ≥ 2 undecided slots in flight — both rounds
    // are mid-consensus, so surviving replicas must arbitrate the orphaned
    // slots, re-propose unserved outcomes, and cascade away any stale
    // speculation. Every seed must hold the full §3 specification and
    // land exactly on the depth-1 run's values.
    let mut deep_windows = 0;
    for seed in 0..12u64 {
        let mut s = burst(5300 + seed, 4, SpeculationConfig::on());
        let a1 = s.topo.primary();
        s.sim_mut().on_trace(
            move |ev| {
                ev.node == a1 && matches!(ev.kind, TraceKind::PipelineWindow { open } if open >= 2)
            },
            FaultAction::Crash(a1),
        );
        let mut s = settle(s);
        if s.pipeline_window_peak() >= 2 {
            deep_windows += 1;
        }
        let mut off = settle(burst(5300 + seed, 1, SpeculationConfig::disabled()));
        let expected = s.requests as usize;
        assert_eq!(s.delivered_commits(), expected, "seed {seed}: every request commits");
        assert_eq!(off.delivered_commits(), expected);
        assert_matches_reference(&mut s, &mut off, &format!("seed {seed}"));
    }
    assert!(
        deep_windows >= 6,
        "most sweep runs must actually crash the primary with ≥2 undecided slots \
         (got {deep_windows}/12)"
    );
}

#[test]
fn stacked_speculation_buffers_die_with_the_shard_primary() {
    // Under a deep window a shard primary stacks one speculation buffer
    // per proposed slot. Cycle it on its first SpecExec: the whole stack
    // and its pre-paid ledger are volatile, so the recovered primary
    // replays every affected slot decide-then-execute — and every replica
    // must still rebuild to the depth-1 run's state from its WAL.
    let mut s = burst(5401, 4, SpeculationConfig::on());
    let victim = s.shard_primary(0);
    s.sim_mut().on_trace(
        move |ev| ev.node == victim && matches!(ev.kind, TraceKind::SpecExec { .. }),
        FaultAction::CrashRecover(victim, Dur::from_millis(10)),
    );
    let mut s = settle(s);
    let mut off = settle(burst(5401, 1, SpeculationConfig::disabled()));
    assert_eq!(s.delivered_commits(), s.requests as usize);
    assert_matches_reference(&mut s, &mut off, "stacked-stash crash");
}
