//! Property-based testing with proptest: the chaos space and the
//! transactional engine's invariants under arbitrary operation sequences
//! and crash points.

use etx::base::ids::{NodeId, RequestId, ResultId};
use etx::base::value::{DbOp, Outcome, Vote};
use etx::harness::{run_chaos, ChaosOptions};
use etx::store::Engine;
use proptest::prelude::*;

fn rid(n: u64) -> ResultId {
    ResultId::first(RequestId { client: NodeId(0), seq: n })
}

fn arb_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        (0..4u8).prop_map(|k| DbOp::Get { key: format!("k{k}") }),
        (0..4u8, -50..50i64).prop_map(|(k, v)| DbOp::Put { key: format!("k{k}"), value: v }),
        (0..4u8, -10..10i64).prop_map(|(k, d)| DbOp::Add { key: format!("k{k}"), delta: d }),
        (0..4u8, 1..3i64).prop_map(|(k, q)| DbOp::Reserve { key: format!("k{k}"), qty: q }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The whole protocol stack under arbitrary chaos seeds/options.
    #[test]
    fn spec_holds_under_arbitrary_chaos(
        seed in 0u64..5_000,
        apps in prop_oneof![Just(3usize), Just(5usize)],
        dbs in 1usize..3,
        loss in prop_oneof![Just(0.0f64), Just(0.05), Just(0.15)],
        requests in 1u64..3,
    ) {
        let opts = ChaosOptions {
            apps,
            dbs,
            requests,
            loss_rate: loss,
            ..ChaosOptions::default()
        };
        run_chaos(seed, &opts).assert_ok();
    }

    /// Committed effects survive any crash point: for every prefix of the
    /// WAL, recovery never invents data and never loses a committed write.
    #[test]
    fn store_recovery_is_prefix_safe(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..5), 1..8),
    ) {
        let mut engine = Engine::new();
        let mut wal = Vec::new();
        let mut committed = std::collections::BTreeMap::new();
        for (i, ops) in batches.iter().enumerate() {
            let r = rid(i as u64 + 1);
            let st = engine.execute(r, ops);
            let (vote, writes) = engine.vote(r);
            for w in writes { wal.push(w.rec); }
            if vote == Vote::Yes {
                let (o, writes) = engine.decide(r, Outcome::Commit);
                for w in writes { wal.push(w.rec); }
                prop_assert_eq!(o, Outcome::Commit);
                committed.clear();
                committed.extend(engine.snapshot().clone());
            } else {
                let (_, writes) = engine.decide(r, Outcome::Abort);
                for w in writes { wal.push(w.rec); }
            }
            let _ = st;
            // Crash NOW at this wal prefix: recovery must equal the
            // committed state exactly.
            let recovered = Engine::recover(&wal);
            prop_assert_eq!(recovered.snapshot(), engine.snapshot(),
                "recovered state diverged at batch {}", i);
        }
    }

    /// Recovery is idempotent and insensitive to being re-run.
    #[test]
    fn store_recovery_idempotent(
        n in 1usize..10,
    ) {
        let mut engine = Engine::new();
        let mut wal = Vec::new();
        for i in 0..n {
            let r = rid(i as u64 + 1);
            engine.execute(r, &[DbOp::Add { key: "x".into(), delta: 1 }]);
            for w in engine.vote(r).1 { wal.push(w.rec); }
            for w in engine.decide(r, Outcome::Commit).1 { wal.push(w.rec); }
        }
        let once = Engine::recover(&wal);
        let twice = Engine::recover(&wal);
        prop_assert_eq!(once.snapshot(), twice.snapshot());
        prop_assert_eq!(once.committed("x"), Some(n as i64));
    }

    /// In-doubt branches keep their locks across recovery; everything else
    /// releases.
    #[test]
    fn store_indoubt_locks_survive(
        prepare_first in any::<bool>(),
    ) {
        let mut engine = Engine::new();
        let mut wal = Vec::new();
        let r1 = rid(1);
        engine.execute(r1, &[DbOp::Put { key: "a".into(), value: 1 }]);
        if prepare_first {
            for w in engine.vote(r1).1 { wal.push(w.rec); }
        }
        let recovered = Engine::recover(&wal);
        if prepare_first {
            prop_assert!(recovered.is_prepared(r1));
            let mut rec = recovered;
            prop_assert_eq!(
                rec.execute(rid(2), &[DbOp::Put { key: "a".into(), value: 2 }]),
                etx::base::value::ExecStatus::Conflict
            );
        } else {
            prop_assert!(!recovered.is_prepared(r1));
            prop_assert_eq!(recovered.snapshot().len(), 0);
        }
    }
}
