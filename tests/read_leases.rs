//! Time-bounded read leases, end to end.
//!
//! Four families of guarantees:
//!
//! * **forward-free serving** — with leases on and replication healthy,
//!   an in-lease follower serves every fast-path read (including
//!   multi-shard collects) locally: zero `ReadForwarded` hops at scale;
//! * **staleness bound** — a follower cut off from its primary keeps
//!   serving only until its last grant expires, then refuses and forwards
//!   (`LeaseExpired`): the lease duration is a hard bound on how long a
//!   partitioned replica may answer;
//! * **failover drain** — a recovering grantor fences its write
//!   acknowledgements until every lease its previous incarnation could
//!   have granted has lapsed, so nothing a still-leased follower serves
//!   can contradict an acknowledged post-recovery write;
//! * **atomicity and causality survive** — the 12 %-loss fracture sweep
//!   stays green with follower-served collects, read-your-writes holds
//!   across lease boundaries, and leases-off is byte-identical to the
//!   lease-free build (pinned in `read_path.rs` and re-checked here
//!   against an explicitly disabled config).

use etx::base::config::{ReadLeaseConfig, ReadPathConfig};
use etx::base::time::{Dur, Time};
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::harness::{
    run_read_lease_chaos, ChaosOptions, MiddleTier, Scenario, ScenarioBuilder, Workload,
};
use etx::sim::RunOutcome;

fn settle(s: &mut Scenario) {
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, RunOutcome::Predicate, "every request must settle");
    s.quiesce(Dur::from_millis(100));
}

// ---- forward-free serving at scale ------------------------------------------

/// The tentpole's acceptance shape: 16 shards, 90 % reads, leases on —
/// in-lease followers serve every read that reaches them, and no read
/// takes the `ReadForwarded` hop. (With healthy replication every
/// follower is continuously in lease, so "zero forwards in in-lease
/// windows" is simply zero forwards.)
#[test]
fn sixteen_shards_ninety_percent_reads_never_forward_while_leased() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 161)
        .shards(16)
        .replication(2)
        .clients(4)
        .requests(10)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(Workload::ReadMostly { accounts: 64, read_pct: 90, amount: 10 })
        .build();
    settle(&mut s);
    assert!(s.lease_grants() >= 1, "primaries must be granting leases");
    assert!(s.follower_reads_served() >= 1, "followers must serve reads locally");
    assert_eq!(s.reads_forwarded(), 0, "an in-lease follower must never take the forward hop");
    assert_eq!(s.lease_expired_reads(), 0, "healthy renewals must never lapse");
}

/// Multi-shard collects — primary-only before this change — are served by
/// in-lease followers: at least one fan-out read resolves with a follower
/// serving one of its shard calls, and none of them forwards.
#[test]
fn in_lease_followers_serve_multi_shard_collects() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 47)
        .shards(4)
        .replication(2)
        .clients(4)
        .requests(8)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(Workload::ReadMostly { accounts: 32, read_pct: 100, amount: 10 })
        .build();
    settle(&mut s);
    let trace = s.trace();
    let multi: Vec<_> = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::ReadFastPath { rid, shards } if shards >= 2 => Some(rid),
            _ => None,
        })
        .collect();
    assert!(!multi.is_empty(), "the mix must produce cross-shard fan-out reads");
    let follower_served_collect = trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::FollowerRead { rid } if multi.contains(&rid)));
    assert!(
        follower_served_collect,
        "a multi-shard collect must be served (at least partly) by an in-lease follower"
    );
    assert_eq!(s.reads_forwarded(), 0, "no collect call may forward while leased");
}

// ---- the staleness bound ----------------------------------------------------

/// A follower cut off from its primary mid-run: renewals ride the
/// replication stream, so the grant lapses one lease duration after the
/// partition, and every later read aimed at that follower is refused
/// (`LeaseExpired`) and forwarded. Before the cut the same follower was
/// serving in-lease. State is frozen (pure reads), so every delivered
/// value must be the seed value throughout.
#[test]
fn starved_follower_serves_until_expiry_then_forwards() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 83)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(24)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(Workload::ReadMostly { accounts: 8, read_pct: 100, amount: 10 })
        .build();
    // Cut shard 0's replication (and with it lease renewal) 6 ms in —
    // far beyond the first grants, well before the run drains.
    let replicas = s.shard_replicas(0).to_vec();
    s.quiesce(Dur::from_millis(6));
    s.sim_mut().block_link(replicas[0], replicas[1], Time(3_600_000_000));
    settle(&mut s);
    assert!(
        s.follower_reads_served() >= 1,
        "the follower must serve in-lease before the partition"
    );
    assert!(
        s.lease_expired_reads() >= 1,
        "reads after the grant lapses must be refused with LeaseExpired"
    );
    for (rid, decision) in s.delivered_results() {
        assert_eq!(decision.outcome, Outcome::Commit);
        let result = decision.result.expect("reads carry results");
        for (label, value) in &result.entries {
            if label.starts_with("acct") {
                assert_eq!(*value, 1_000, "{rid}: {label} served stale or fabricated state");
            }
        }
    }
}

// ---- the failover drain -----------------------------------------------------

/// A crashed grantor recovers while leases it granted may still be live.
/// Recovery must fence its commit acknowledgements until those leases
/// have provably lapsed: any write it decides inside the fence window
/// cannot reach its client before the fence lifts (the acknowledgement —
/// which is what lets application servers treat the write as readable —
/// is what the fence delays).
#[test]
fn recovered_grantor_fences_acks_until_granted_leases_lapse() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 29)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(10)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(Workload::ReadAfterWrite { accounts: 16, amount: 10 })
        .build();
    let grantor = s.shard_primary(0);
    let t_rec = Time(8_000);
    s.sim_mut().crash_at(Time(5_000), grantor);
    s.sim_mut().recover_at(t_rec, grantor);
    settle(&mut s);
    assert!(s.lease_fences() >= 1, "recovery with leases on must install a fence");
    let trace = s.trace();
    let until = trace
        .events()
        .iter()
        .find_map(|e| match e.kind {
            TraceKind::LeaseFence { until } if e.node == grantor && e.at >= t_rec => Some(until),
            _ => None,
        })
        .expect("the recovered grantor must trace its fence");
    assert!(until > t_rec, "the fence must extend past recovery");
    // Every write the grantor decided inside the fence window delivers to
    // its client only after the fence lifts.
    let fenced_rids: Vec<_> = trace
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::DbDecide { rid, outcome: Outcome::Commit }
                if e.node == grantor && e.at >= t_rec && e.at < until =>
            {
                Some(rid)
            }
            _ => None,
        })
        .collect();
    assert!(
        !fenced_rids.is_empty(),
        "the backlog must land at the recovered grantor inside the fence window"
    );
    for e in trace.events() {
        if let TraceKind::Deliver { rid, .. } = e.kind {
            if fenced_rids.contains(&rid) {
                assert!(
                    e.at >= until,
                    "{rid}: delivered at {:?}, before the fence lifted at {until:?} — \
                     a still-leased follower could contradict this acknowledged write",
                    e.at
                );
            }
        }
    }
}

// ---- atomicity under loss (the fracture sweep, lease edition) ---------------

/// The conserved-pair invariant with leases on: multi-shard collects
/// served by in-lease followers under 12 % message loss never observe a
/// cross-shard transfer half-applied. This is the lease soundness
/// argument's load-bearing test — the lease duration sits below the
/// exec→commit-visible protocol floor, so a follower that could serve a
/// fractured prefix is out of lease at the dangerous moment and forwards
/// into the primary's in-doubt veto.
#[test]
fn leased_cross_shard_reads_never_observe_fractured_transfers() {
    let workload = Workload::ConservedPairs { pairs: 8, read_pct: 80, amount: 7 };
    for seed in [2u64, 19, 1009] {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
            .shards(4)
            .replication(2)
            .clients(8)
            .requests(14)
            .read_path(ReadPathConfig::follower_reads())
            .read_leases(ReadLeaseConfig::fast_for_tests())
            .net(etx::sim::NetConfig {
                min_delay: Dur::from_micros(100),
                max_delay: Dur::from_micros(300),
                loss_rate: 0.12,
                retransmit_gap: Dur::from_millis(8),
            })
            .workload(workload.clone())
            .build();
        settle(&mut s);
        let trace = s.trace();
        let multi: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::ReadFastPath { rid, shards } if shards >= 2 => Some(rid),
                _ => None,
            })
            .collect();
        assert!(!multi.is_empty(), "seed {seed}: no cross-shard fast read in the run");
        assert!(
            trace
                .events()
                .iter()
                .any(|e| matches!(e.kind, TraceKind::FollowerRead { rid } if multi.contains(&rid))),
            "seed {seed}: the sweep must exercise follower-served collects"
        );
        let mut reads_checked = 0usize;
        for (rid, decision) in s.delivered_results() {
            let request = workload.request(&s.topo, rid.request.client, rid.request.seq);
            if !request.script.is_read_only() {
                continue;
            }
            reads_checked += 1;
            let result = decision.result.expect("reads carry results");
            let total: i64 =
                result.entries.iter().filter(|(l, _)| l.starts_with("acct")).map(|&(_, v)| v).sum();
            assert_eq!(total, 2_000, "seed {seed}, {rid}: fractured leased read — {result}");
        }
        assert!(reads_checked >= 40, "seed {seed}: too few pair reads to mean anything");
        let grand: i64 = (0..4u32)
            .map(|shard| s.rebuilt_committed(s.shard_primary(shard)).values().sum::<i64>())
            .sum();
        assert_eq!(grand, 16_000, "seed {seed}: transfers must conserve the grand total");
    }
}

// ---- read-your-writes across lease boundaries -------------------------------

/// Sequential write→read pairs with leases on: every read must observe
/// its own preceding write, whether the follower serves it in lease (the
/// causality-token floor replaces the server-wide stamp) or replication
/// lag forces the pair's read back to the primary.
#[test]
fn read_your_writes_holds_across_lease_boundaries() {
    for seed in [3u64, 17, 99, 2024] {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
            .shards(4)
            .replication(2)
            .requests(8)
            .read_path(ReadPathConfig::follower_reads())
            .read_leases(ReadLeaseConfig::fast_for_tests())
            .workload(Workload::ReadAfterWrite { accounts: 16, amount: 10 })
            .build();
        settle(&mut s);
        let mut reads = 0;
        for (rid, decision) in s.delivered_results() {
            if rid.request.seq % 2 == 0 {
                reads += 1;
                assert_eq!(decision.outcome, Outcome::Commit);
                let result = decision.result.expect("reads carry results");
                let value = result
                    .entries
                    .iter()
                    .find(|(l, _)| l.starts_with("acct"))
                    .map(|&(_, v)| v)
                    .expect("read result names its account");
                assert_eq!(
                    value, 1_010,
                    "seed {seed}, {rid}: leased read missed the pair's own write"
                );
            }
        }
        assert_eq!(reads, 4, "seed {seed}: all four reads must deliver");
    }
}

// ---- leases off are not there -----------------------------------------------

/// An explicitly disabled lease config must be indistinguishable from
/// never mentioning leases at all: same seed, same read-path scenario,
/// byte-identical traces. (The deeper pin — leases-off replays the
/// pre-lease golden hashes — lives in `read_path.rs`.)
#[test]
fn disabled_leases_leave_the_read_path_byte_identical() {
    // `ETX_READ_LEASES=1` pins leases *on* for builders that never mention
    // them, which is exactly the "absent" leg this identity compares
    // against — the premise only exists without the pin.
    if matches!(
        std::env::var("ETX_READ_LEASES").ok().as_deref(),
        Some("1") | Some("on") | Some("true")
    ) {
        return;
    }
    let run = |leases: Option<ReadLeaseConfig>| {
        let mut b = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 7)
            .shards(4)
            .replication(2)
            .clients(2)
            .requests(8)
            .read_path(ReadPathConfig::follower_reads())
            .workload(Workload::ReadMostly { accounts: 32, read_pct: 80, amount: 10 });
        if let Some(cfg) = leases {
            b = b.read_leases(cfg);
        }
        let mut s = b.build();
        settle(&mut s);
        format!("{:#?}", s.trace().events()).into_bytes()
    };
    assert_eq!(
        run(Some(ReadLeaseConfig::disabled())),
        run(None),
        "a disabled lease config must add zero messages, timers, or trace events"
    );
}

// ---- the read-lease chaos scenario ------------------------------------------

/// The grantor primary is crash/recovery-cycled on the first fast-path
/// read (leases outstanding), another shard's replication stream is
/// blocked (lease starvation) — the full §3 specification must hold and
/// the lease machinery must demonstrably engage across the sweep.
#[test]
fn read_lease_chaos_holds_the_spec_across_seeds() {
    let opts = ChaosOptions {
        apps: 3,
        clients: 2,
        requests: 8,
        shards: Some(4),
        replication: 2,
        ..Default::default()
    };
    let mut any_granted = false;
    let mut any_lapsed = false;
    for seed in [5u64, 77, 303, 9001] {
        let outcome = run_read_lease_chaos(seed, &opts);
        outcome.assert_ok();
        any_granted |= outcome.lease_grants > 0;
        any_lapsed |= outcome.lease_expired_reads > 0 || outcome.forwarded_reads > 0;
    }
    assert!(any_granted, "the chaos sweep never had leases outstanding");
    assert!(any_lapsed, "the starved shard must force lapsed or forwarded reads somewhere");
}

// ---- determinism ------------------------------------------------------------

/// Lease timers, renewals and fences are on the simulated clock like
/// everything else: one seed, one history, byte for byte.
#[test]
fn leased_runs_replay_byte_identical_traces() {
    let run = || {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0x1EA5E)
            .shards(4)
            .replication(2)
            .clients(2)
            .requests(8)
            .read_path(ReadPathConfig::follower_reads())
            .read_leases(ReadLeaseConfig::fast_for_tests())
            .workload(Workload::ReadAfterWrite { accounts: 16, amount: 10 })
            .build();
        let grantor = s.shard_primary(0);
        s.sim_mut().crash_at(Time(5_000), grantor);
        s.sim_mut().recover_at(Time(8_000), grantor);
        settle(&mut s);
        format!("{:#?}", s.trace().events()).into_bytes()
    };
    assert_eq!(run(), run(), "a leased failover run diverged between replays");
}
