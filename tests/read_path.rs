//! The read fast lane, end to end.
//!
//! Three families of guarantees:
//!
//! * **trace identity off** — with `ReadPathConfig` disabled (the
//!   default), every scenario replays the traces the pre-fast-lane code
//!   produced, byte for byte (pinned as FNV-1a hashes of the full debug
//!   trace, captured from the tree immediately before the lane landed);
//! * **fast-lane shape** — with the lane on, read-only scripts are
//!   classified, routed around the commit pipeline (no votes, no decides,
//!   no consensus for them), fanned out per shard, merged, and delivered
//!   exactly once with correct values;
//! * **follower staleness bound** — an up-to-date follower serves
//!   locally; a follower behind the read's freshness stamp forwards to
//!   the primary and the client still observes its own writes;
//! * **cross-shard atomicity** — a fan-out read racing cross-shard
//!   transfers never observes one half-applied (the snapshot-validation
//!   loop), checked via the conserved-pair invariant.

use etx::base::config::{BatchingConfig, ReadPathConfig};
use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::harness::{MiddleTier, Scenario, ScenarioBuilder, Workload};
use etx::sim::FaultAction;

/// `ETX_BATCH_SIZE` changes scheduling wholesale; the golden hashes were
/// captured without it.
fn batching_pinned() -> bool {
    std::env::var("ETX_BATCH_SIZE").is_ok()
}

/// `ETX_SPECULATION=1` adds `SpecExec` frames (and reshapes batched
/// scheduling); the golden hashes pin the speculation-*off* pipeline.
fn speculation_pinned() -> bool {
    matches!(
        std::env::var("ETX_SPECULATION").ok().as_deref(),
        Some("1") | Some("on") | Some("true")
    )
}

/// `ETX_PIPELINE_DEPTH>1` lets concurrent flushes overlap consensus
/// rounds (and trace `PipelineWindow` marks); the golden hashes pin the
/// single-slot decision log.
fn pipeline_pinned() -> bool {
    std::env::var("ETX_PIPELINE_DEPTH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|d| d > 1)
}

/// `ETX_READ_LEASES=1` adds lease-renewal timers and grant frames to
/// every read-path scenario with replication; the golden hashes pin the
/// lease-*off* schedules, and the off leg is where the replay identity is
/// asserted.
fn leases_pinned() -> bool {
    matches!(
        std::env::var("ETX_READ_LEASES").ok().as_deref(),
        Some("1") | Some("on") | Some("true")
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---- trace identity with the lane off --------------------------------------

/// Pre-fast-lane golden hashes (captured on the commit preceding this
/// change, same scenarios, same seeds, env hooks unset). The lane being
/// *off* must mean "the lane does not exist": identical schedules,
/// identical traces.
const GOLDEN_FAILOVER: u64 = 0xE5F3_623F_A759_DA91;
const GOLDEN_SHARDED: u64 = 0x71C3_5590_ABDF_5E5E;
const GOLDEN_BATCHED: u64 = 0xBDF7_4F5E_D759_5D43;

fn trace_bytes(mut s: Scenario, settle: usize) -> Vec<u8> {
    s.run_until_settled(settle);
    s.quiesce(Dur::from_millis(50));
    format!("{:#?}", s.trace().events()).into_bytes()
}

#[test]
fn fast_path_off_replays_pre_existing_traces_byte_identically() {
    if batching_pinned() || speculation_pinned() || leases_pinned() || pipeline_pinned() {
        return; // hashes were captured at the default batch depth, the
                // single-slot decision log, the strict
                // decide-then-execute order, lease-free
    }
    // Scenario 1: flat back end, primary crash mid-protocol (the
    // determinism suite's failover run).
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0xE7A)
        .workload(Workload::BankUpdate { amount: 7 })
        .requests(2)
        .build();
    let victim = s.topo.primary();
    let db = s.topo.db_servers[0];
    s.sim_mut().on_trace(
        move |ev| ev.node == db && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::Crash(victim),
    );
    assert_eq!(
        fnv1a(&trace_bytes(s, 2)),
        GOLDEN_FAILOVER,
        "fast-path-off failover trace diverged from the pre-fast-lane code"
    );

    // Scenario 2: 4 shards × 2 replicas, cross-shard transfers, shard
    // primary crash/recovery (routing + replication + catch-up).
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0x5A4D)
        .shards(4)
        .replication(2)
        .workload(Workload::ShardedBank { accounts: 32, cross_pct: 100, amount: 5 })
        .requests(2)
        .build();
    let victim = s.shard_primary(0);
    s.sim_mut().on_trace(
        move |ev| ev.node == victim && matches!(ev.kind, TraceKind::DbVote { .. }),
        FaultAction::CrashRecover(victim, Dur::from_millis(20)),
    );
    assert_eq!(
        fnv1a(&trace_bytes(s, 2)),
        GOLDEN_SHARDED,
        "fast-path-off sharded trace diverged from the pre-fast-lane code"
    );

    // Scenario 3: batched open-loop burst (the commit pipeline under
    // concurrency — the path the lane routes around).
    let s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0xABC)
        .shards(4)
        .clients(4)
        .requests(6)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .workload(Workload::OpenLoopBurst { accounts: 32, amount: 1 })
        .build();
    let n = s.requests as usize;
    assert_eq!(
        fnv1a(&trace_bytes(s, n)),
        GOLDEN_BATCHED,
        "fast-path-off batched trace diverged from the pre-fast-lane code"
    );
}

// ---- fast-lane shape --------------------------------------------------------

fn read_scenario(seed: u64, read_path: ReadPathConfig, read_pct: u8) -> Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(4)
        .replication(2)
        .clients(4)
        .requests(8)
        .read_path(read_path)
        .workload(Workload::ReadMostly { accounts: 32, read_pct, amount: 10 })
        .build()
}

#[test]
fn pure_reads_skip_the_commit_machinery_entirely() {
    let mut s = read_scenario(11, ReadPathConfig::primary_only(), 100);
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate, "every read must deliver");
    s.quiesce(Dur::from_millis(50));
    assert_eq!(s.delivered_commits(), n, "reads deliver as committed results");
    assert_eq!(s.fast_path_reads(), n, "every request took the fast lane");
    let trace = s.trace();
    assert_eq!(
        trace.count_kind(|k| matches!(k, TraceKind::DbVote { .. })),
        0,
        "a pure-read run must never open the voting phase"
    );
    assert_eq!(
        trace.count_kind(|k| matches!(k, TraceKind::DbDecide { .. })),
        0,
        "a pure-read run must never reach decide()"
    );
    assert_eq!(
        trace.count_kind(|k| matches!(k, TraceKind::BatchDecided { .. })),
        0,
        "a pure-read run must never open a decision-log slot"
    );
    // No writes happened, so every read must observe exactly the seed data.
    for (rid, decision) in read_deliveries(&mut s) {
        let result = decision.result.expect("reads carry results");
        for (label, value) in &result.entries {
            if label.starts_with("acct") {
                assert_eq!(*value, 1_000, "{rid}: {label} must read the seed value");
            }
        }
    }
}

#[test]
fn fast_path_off_sends_reads_down_the_old_route() {
    let mut s = read_scenario(11, ReadPathConfig::disabled(), 100);
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(50));
    assert_eq!(s.fast_path_reads(), 0, "disabled lane classifies nothing");
    assert!(
        s.trace().count_kind(|k| matches!(k, TraceKind::DbVote { .. })) >= n,
        "slow-path reads run the full voting phase"
    );
}

#[test]
fn cross_shard_reads_fan_out_and_merge() {
    let mut s = read_scenario(23, ReadPathConfig::primary_only(), 100);
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(50));
    // Some ReadMostly reads span two accounts; with 4 shards most pairs
    // land on distinct shards — the fan-out path.
    let multi = s
        .trace()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::ReadFastPath { shards, .. } if shards >= 2))
        .count();
    assert!(multi >= 1, "the sweep must exercise cross-shard read fan-out");
    // Every two-key read's merged result carries both keys' values.
    for (rid, decision) in read_deliveries(&mut s) {
        let result = decision.result.expect("reads carry results");
        let keys = result.entries.iter().filter(|(l, _)| l.starts_with("acct")).count();
        assert!(keys >= 1, "{rid}: merged read result lost its entries: {result}");
        for (label, value) in &result.entries {
            if label.starts_with("acct") {
                assert_eq!(*value, 1_000, "{rid}: {label} stale or fabricated");
            }
        }
    }
}

/// Delivered `(rid, decision)` pairs, read out of the client processes.
fn read_deliveries(
    s: &mut Scenario,
) -> Vec<(etx::base::ids::ResultId, etx::base::value::Decision)> {
    s.delivered_results()
}

// ---- the follower staleness bound (seed sweep) ------------------------------

/// Sequential write-then-read pairs with follower reads on. Two regimes
/// per seed:
///
/// * **up-to-date follower** — replication is allowed to flow, so by the
///   time each read lands the follower has applied the write: reads serve
///   locally (`FollowerRead`), nothing forwards;
/// * **lagging follower** — the primary→follower links are blocked for
///   the whole run, so every stamped read aimed at a follower is behind:
///   it must forward (`ReadForwarded`), and the delivered value must
///   still be the client's own write (never the stale pre-write state).
#[test]
fn follower_staleness_bound_over_seed_sweep() {
    for seed in [3u64, 17, 99, 2024] {
        // Regime 1: follower caught up → serve locally.
        let mut s = staleness_scenario(seed);
        let out = s.run_until_settled(8);
        assert_eq!(out, etx::sim::RunOutcome::Predicate, "seed {seed}: must settle");
        s.quiesce(Dur::from_millis(50));
        assert!(
            s.follower_reads_served() >= 1,
            "seed {seed}: an up-to-date follower must serve reads locally"
        );
        assert_read_your_writes(&mut s, seed);

        // Regime 2: followers starved of replication → forward, stay fresh.
        let mut s = staleness_scenario(seed);
        for shard in 0..4u32 {
            let replicas = s.shard_replicas(shard).to_vec();
            for &f in &replicas[1..] {
                s.sim_mut().block_link(replicas[0], f, etx::base::time::Time(3_600_000_000));
            }
        }
        let out = s.run_until_settled(8);
        assert_eq!(out, etx::sim::RunOutcome::Predicate, "seed {seed}: lagging run must settle");
        s.quiesce(Dur::from_millis(50));
        assert!(
            s.reads_forwarded() >= 1,
            "seed {seed}: a follower behind the stamp must forward, not serve stale"
        );
        assert_read_your_writes(&mut s, seed);
    }
}

fn staleness_scenario(seed: u64) -> Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(4)
        .replication(2)
        .requests(8) // four write→read pairs
        .read_path(ReadPathConfig::follower_reads())
        .workload(Workload::ReadAfterWrite { accounts: 16, amount: 10 })
        .build()
}

/// Every even-seq read must observe the value its preceding write
/// committed: seed 1000 plus the pair's increment.
fn assert_read_your_writes(s: &mut Scenario, seed: u64) {
    let mut reads = 0;
    for (rid, decision) in read_deliveries(s) {
        if rid.request.seq % 2 == 0 {
            reads += 1;
            assert_eq!(decision.outcome, Outcome::Commit);
            let result = decision.result.expect("reads carry results");
            let value = result
                .entries
                .iter()
                .find(|(l, _)| l.starts_with("acct"))
                .map(|&(_, v)| v)
                .expect("read result names its account");
            assert_eq!(
                value, 1_010,
                "seed {seed}, {rid}: read served stale state (want the pair's own write)"
            );
        }
    }
    assert_eq!(reads, 4, "seed {seed}: all four reads must deliver");
}

// ---- fast-vs-slow read equivalence under chaos ------------------------------

/// The equivalence property: on a pure-read workload (committed state is
/// frozen at the seed data), the fast lane and the slow route must deliver
/// the *same values* for every request — under database crash/recovery
/// chaos, message loss, and follower lag. Attempt numbers may differ (the
/// slow route can abort and retry), so only the data entries compare.
#[test]
fn fast_and_slow_paths_deliver_equal_read_values_under_chaos() {
    for seed in [7u64, 41, 128, 555] {
        let fast = chaotic_pure_read_run(seed, ReadPathConfig::follower_reads());
        let slow = chaotic_pure_read_run(seed, ReadPathConfig::disabled());
        assert_eq!(fast.len(), slow.len(), "seed {seed}: both routes must settle every request");
        for (req, fast_vals) in &fast {
            let slow_vals = slow
                .iter()
                .find(|(r, _)| r == req)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("seed {seed}: {req} delivered fast but not slow"));
            assert_eq!(
                fast_vals, slow_vals,
                "seed {seed}: {req} read different values down the two routes"
            );
        }
    }
}

/// Runs a pure-read workload under a fixed chaos schedule (a db
/// crash/recovery cycle, message loss, a blocked replication link) and
/// returns each request's delivered data entries (attempt label stripped).
fn chaotic_pure_read_run(
    seed: u64,
    read_path: ReadPathConfig,
) -> Vec<(etx::base::ids::RequestId, Vec<(String, i64)>)> {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(4)
        .replication(2)
        .clients(2)
        .requests(6)
        .read_path(read_path)
        .net(etx::sim::NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            loss_rate: 0.05,
            retransmit_gap: Dur::from_millis(2),
        })
        .workload(Workload::ReadMostly { accounts: 32, read_pct: 100, amount: 10 })
        .build();
    // Chaos: cycle one shard replica mid-run and starve another shard's
    // follower of replication (irrelevant to frozen state, lethal to a
    // fast path that forgot its freshness gate or retry backstop).
    let victim = s.shard_replicas(0)[1];
    s.sim_mut().crash_at(etx::base::time::Time(2_000), victim);
    s.sim_mut().recover_at(etx::base::time::Time(20_000), victim);
    let lag = s.shard_replicas(1).to_vec();
    s.sim_mut().block_link(lag[0], lag[1], etx::base::time::Time(100_000));
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate, "seed {seed}: pure-read run must settle");
    s.quiesce(Dur::from_millis(100));
    let mut rows: Vec<_> = read_deliveries(&mut s)
        .into_iter()
        .map(|(rid, decision)| {
            assert_eq!(decision.outcome, Outcome::Commit);
            let result = decision.result.expect("reads carry results");
            let vals: Vec<(String, i64)> =
                result.entries.iter().filter(|(l, _)| l != "attempt").cloned().collect();
            (rid.request, vals)
        })
        .collect();
    rows.sort_by_key(|(req, _)| *req);
    rows
}

// ---- the read-path chaos scenario -------------------------------------------

/// A follower crashes on the first classified fast-path read, another
/// shard's follower is starved of replication mid-run — the full §3
/// specification must still hold and every request must settle.
#[test]
fn read_path_chaos_holds_the_spec_across_seeds() {
    let opts = etx::harness::ChaosOptions {
        apps: 3,
        clients: 2,
        requests: 8,
        shards: Some(4),
        replication: 2,
        ..Default::default()
    };
    let mut any_forwarded = false;
    for seed in [5u64, 77, 303, 9001] {
        let outcome = etx::harness::run_read_path_chaos(seed, &opts);
        outcome.assert_ok();
        any_forwarded |= outcome.forwarded_reads > 0;
    }
    // The blocked replication link plus the read mix must force the
    // forward path somewhere in the sweep. (The chaos runner pins its
    // route explicitly, which wins over the ETX_READ_PATH matrix hook.)
    assert!(any_forwarded, "the chaos sweep never exercised the lagging-follower forward path");
}

// ---- cross-shard read atomicity (the conserved-pair invariant) --------------

/// The isolation property the snapshot-validation loop exists for: a
/// cross-shard fan-out read racing cross-shard transfers must observe
/// either all or none of any transfer — never shard A post-commit and
/// shard B pre-commit. `ConservedPairs` transfers money within fixed
/// account pairs (pair sum invariantly 2 000 at every transactionally
/// consistent snapshot) while pair reads fan out across the shards the
/// pair straddles; a fractured read surfaces as a sum ≠ 2 000. Run down
/// both fast routes over a seed sweep, with enough open-loop concurrency
/// that reads genuinely interleave with half-landed transfers. Message
/// loss is what makes the race wide enough to bite: a transfer whose
/// `Decide` to one shard is dropped stays half-applied for a whole
/// retransmit period, and reads land inside that window constantly.
///
/// The parameters are tuned so BOTH halves of the validation check are
/// load-bearing (verified by knocking each out): accepting every
/// collect unvalidated fractures on the first seed, and keeping the
/// position checks but dropping the in-doubt veto still fractures on
/// seeds 83 and 1009 — the read-heavy mix keeps the freshness stamps
/// exact, so during a lost-`Decide` window only the veto stands between
/// a half-applied transfer and an accepted snapshot.
#[test]
fn cross_shard_fast_reads_never_observe_fractured_transfers() {
    let workload = Workload::ConservedPairs { pairs: 8, read_pct: 80, amount: 7 };
    for seed in [2u64, 19, 83, 1009] {
        for cfg in [ReadPathConfig::primary_only(), ReadPathConfig::follower_reads()] {
            let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
                .shards(4)
                .replication(2)
                .clients(8)
                .requests(14)
                .read_path(cfg)
                .net(etx::sim::NetConfig {
                    min_delay: Dur::from_micros(100),
                    max_delay: Dur::from_micros(300),
                    loss_rate: 0.12,
                    retransmit_gap: Dur::from_millis(8),
                })
                .workload(workload.clone())
                .build();
            let n = s.requests as usize;
            let out = s.run_until_settled(n);
            assert_eq!(out, etx::sim::RunOutcome::Predicate, "seed {seed}: must settle");
            s.quiesce(Dur::from_millis(100));
            // The run must actually exercise the path under test: pair
            // reads fanning out over more than one shard.
            let multi = s
                .trace()
                .events()
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::ReadFastPath { shards, .. } if shards >= 2))
                .count();
            assert!(multi >= 1, "seed {seed}: no cross-shard fast read in the run");
            // Every delivered pair read must observe a conserved sum.
            let mut reads_checked = 0usize;
            for (rid, decision) in read_deliveries(&mut s) {
                let request = workload.request(&s.topo, rid.request.client, rid.request.seq);
                if !request.script.is_read_only() {
                    continue;
                }
                reads_checked += 1;
                let result = decision.result.expect("reads carry results");
                let total: i64 = result
                    .entries
                    .iter()
                    .filter(|(l, _)| l.starts_with("acct"))
                    .map(|&(_, v)| v)
                    .sum();
                assert_eq!(
                    total, 2_000,
                    "seed {seed}, {rid}: fractured cross-shard read — {result}"
                );
            }
            assert!(reads_checked >= 40, "seed {seed}: too few pair reads to mean anything");
            // Post-state sanity: the total across the shard primaries
            // equals the seeded total (transfers only moved money around;
            // followers hold replicated copies and would double-count).
            let grand: i64 = (0..4u32)
                .map(|shard| s.rebuilt_committed(s.shard_primary(shard)).values().sum::<i64>())
                .sum();
            assert_eq!(grand, 16_000, "seed {seed}: transfers must conserve the grand total");
        }
    }
}

// ---- reads never doom writers ----------------------------------------------

/// A fast-path read racing a writer on the same key must not doom the
/// writer's branch: snapshot reads take no locks. (The engine-level
/// guarantee has a unit test in etx-store; this is the end-to-end shape.)
#[test]
fn concurrent_reads_never_abort_writers() {
    // 50/50 read-write mix hammering 4 accounts over 2 shards: plenty of
    // read-write key collisions in flight at once.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 31)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(6)
        .read_path(ReadPathConfig::follower_reads())
        .workload(Workload::ReadMostly { accounts: 4, read_pct: 50, amount: 1 })
        .build();
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(100));
    // Writers may still conflict with each other (no-wait locking), but a
    // doomed-by-read writer would show as aborts in a run whose only lock
    // traffic besides writers is reads. Compare against the same run with
    // reads down the slow path (where reads DO lock): the fast lane must
    // produce no more aborts.
    let fast_aborts =
        s.trace().count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }));
    let mut slow = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 31)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(6)
        .read_path(ReadPathConfig::disabled())
        .workload(Workload::ReadMostly { accounts: 4, read_pct: 50, amount: 1 })
        .build();
    let out = slow.run_until_settled(n);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    slow.quiesce(Dur::from_millis(100));
    let slow_aborts = slow
        .trace()
        .count_kind(|k| matches!(k, TraceKind::DbDecide { outcome: Outcome::Abort, .. }));
    assert!(
        fast_aborts <= slow_aborts,
        "lock-free reads must not create aborts the locking route avoids \
         (fast {fast_aborts} vs slow {slow_aborts})"
    );
}

// ---- retry rotation and epoch restart (regression) --------------------------

/// A read target that crashes with calls in flight must neither stall
/// the read nor stampede straight to the primaries. The backstop's first
/// firing restarts a multi-shard collect as a **fresh wire epoch** —
/// every stamp re-observed at one instant, stale replies dropped by the
/// round check — and rotates each call to a *different* replica of the
/// same shard; only the second firing escalates to the shard primary.
/// Pure reads on frozen state make any mis-rotation or fractured stamp
/// refresh visible as a wrong value or an unsettled request.
#[test]
fn read_retry_rotates_replicas_before_escalating_to_primaries() {
    let mut retried_total = 0usize;
    let mut rotated_serve = false;
    for seed in [11u64, 42, 170, 901] {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
            .shards(4)
            .replication(3)
            .clients(3)
            .requests(9)
            .read_path(ReadPathConfig::follower_reads())
            .workload(Workload::ReadMostly { accounts: 24, read_pct: 100, amount: 10 })
            .build();
        // Kill one shard-0 replica just as the read burst takes off and
        // bring it back long after: every call routed at it goes
        // unanswered until the backstop rotates the pick.
        let victim = s.shard_replicas(0)[1];
        s.sim_mut().crash_at(etx::base::time::Time(200), victim);
        s.sim_mut().recover_at(etx::base::time::Time(60_000), victim);
        let n = s.requests as usize;
        let out = s.run_until_settled(n);
        assert_eq!(out, etx::sim::RunOutcome::Predicate, "seed {seed}: must settle");
        s.quiesce(Dur::from_millis(100));
        // Frozen state: every delivered read is exact.
        for (rid, decision) in read_deliveries(&mut s) {
            assert_eq!(decision.outcome, Outcome::Commit, "seed {seed}, {rid}");
            let result = decision.result.expect("reads carry results");
            for (label, value) in result.entries.iter().filter(|(l, _)| l.starts_with("acct")) {
                assert_eq!(*value, 1_000, "seed {seed}, {rid}, {label}: wrong frozen value");
            }
        }
        retried_total += s.reads_retried();
        // The escalation ladder is short: rotate once, then primary. A
        // backoff past 2 would mean the backstop kept shooting past a
        // live, answering primary.
        let mut first_retry: std::collections::HashMap<etx::base::ids::ResultId, _> =
            std::collections::HashMap::new();
        for e in s.trace().events() {
            if let TraceKind::ReadRetried { rid, backoff } = e.kind {
                assert!(
                    backoff <= 2,
                    "seed {seed}, {rid}: retry escalated past the primary tier (backoff {backoff})"
                );
                first_retry.entry(rid).or_insert(e.at);
            }
        }
        // S2's point: the first firing lands on a *replica*, not the
        // primary — somewhere in the sweep a retried read must end up
        // follower-served after its retry.
        for e in s.trace().events() {
            if let TraceKind::FollowerRead { rid } = e.kind {
                if first_retry.get(&rid).is_some_and(|&t| e.at > t) {
                    rotated_serve = true;
                }
            }
        }
    }
    assert!(retried_total >= 1, "the sweep never exercised the read-retry backstop");
    assert!(
        rotated_serve,
        "no retried read was ever served by a rotated-to follower — the first \
         backstop firing is escalating straight to the primaries"
    );
}
