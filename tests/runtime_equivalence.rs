//! Runtime equivalence: the deterministic simulator and the
//! multi-threaded backend host the *same* protocol state machines behind
//! the same `Host` seam, so a workload that terminates must settle on the
//! same committed decisions regardless of which runtime carried the
//! messages. These tests run identical scenarios on both backends and
//! compare what the protocol actually promised: the set of committed
//! requests, the recovered database state, and the §3 safety/liveness
//! properties — not schedules or timings, which legitimately differ.
//!
//! Every scenario here pins its backend explicitly via
//! `ScenarioBuilder::runtime`, so the file passes unchanged under
//! `ETX_RUNTIME=threaded` (explicit beats environment — the CI threaded
//! job relies on this).

use std::collections::{BTreeMap, BTreeSet};

use etx::base::ids::ResultId;
use etx::base::runtime::RuntimeKind;
use etx::base::time::Dur;
use etx::base::value::{Decision, Outcome};
use etx::harness::{check, LivenessChecks, MiddleTier, Scenario, ScenarioBuilder, Workload};

/// Runs `workload` to completion on the given backend and returns the
/// settled scenario (threads joined, final trace snapshot taken).
fn settle(
    kind: RuntimeKind,
    seed: u64,
    workload: Workload,
    clients: usize,
    requests: u64,
    shards: u32,
) -> Scenario {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .runtime(kind)
        .shards(shards)
        .replication(2)
        .clients(clients)
        .requests(requests)
        .workload(workload)
        .build();
    let n = s.requests as usize;
    let out = s.run_until_settled(n);
    assert_eq!(
        out,
        etx::sim::RunOutcome::Predicate,
        "{} backend must settle all {n} requests",
        kind.label()
    );
    s.quiesce(Dur::from_millis(50));
    s.stop();
    s
}

/// The per-shard committed state as recovered from each shard primary's
/// decision log — the protocol's authoritative answer to "what happened".
fn primary_states(s: &mut Scenario, shards: u32) -> Vec<BTreeMap<String, i64>> {
    (0..shards).map(|g| s.rebuilt_committed(s.shard_primary(g))).collect()
}

fn committed_requests(results: &[(ResultId, Decision)]) -> BTreeSet<etx::base::ids::RequestId> {
    results
        .iter()
        .filter(|(_, d)| d.outcome == Outcome::Commit)
        .map(|(rid, _)| rid.request)
        .collect()
}

// ---- single-client determinism: full decision equality ----------------------

/// With one closed-loop client the execution is serial, so not just the
/// outcomes but the full delivered decisions (result values included) are
/// backend-independent: the threaded runtime must reproduce the
/// simulator's answers bit for bit.
#[test]
fn serial_sharded_bank_delivers_identical_decisions_on_both_backends() {
    let workload = Workload::ShardedBank { accounts: 32, cross_pct: 100, amount: 10 };
    let mut on_sim = settle(RuntimeKind::Sim, 0x5EA7, workload.clone(), 1, 8, 4);
    let mut on_rt = settle(RuntimeKind::Threaded, 0x5EA7, workload, 1, 8, 4);

    let mut sim_results = on_sim.delivered_results();
    let mut rt_results = on_rt.delivered_results();
    sim_results.sort_by_key(|(rid, _)| *rid);
    rt_results.sort_by_key(|(rid, _)| *rid);
    assert_eq!(sim_results.len(), 8);
    assert_eq!(
        sim_results, rt_results,
        "serial runs must deliver byte-identical decisions on both runtimes"
    );

    // The recovered state agrees shard by shard, and money is conserved:
    // a 100% transfer mix only moves it around, so the grand total stays
    // at the seeded 32 accounts × 1 000.
    let sim_state = primary_states(&mut on_sim, 4);
    let rt_state = primary_states(&mut on_rt, 4);
    assert_eq!(sim_state, rt_state, "shard primaries diverged across runtimes");
    let grand: i64 = rt_state.iter().flat_map(|m| m.values()).sum();
    assert_eq!(grand, 32_000, "transfers must conserve the seeded total");

    for s in [&on_sim, &on_rt] {
        check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true })
            .assert_ok();
    }
}

// ---- concurrent clients: same committed set, same final state ---------------

/// Four concurrent clients transferring within fixed conserved pairs.
/// Interleavings (and therefore abort/retry attempts) legitimately differ
/// between a discrete-event schedule and real threads, but exactly-once
/// delivery pins the *committed set*: every request commits exactly once
/// on both backends, and because each request's delta is fixed by the
/// workload plan, the final recovered state is order-independent and must
/// match exactly.
#[test]
fn concurrent_conserved_pairs_commit_the_same_set_on_both_backends() {
    let workload = Workload::ConservedPairs { pairs: 8, read_pct: 0, amount: 7 };
    let mut on_sim = settle(RuntimeKind::Sim, 41, workload.clone(), 4, 12, 4);
    let mut on_rt = settle(RuntimeKind::Threaded, 41, workload, 4, 12, 4);
    let total = on_sim.requests as usize; // 4 clients × 12 requests each

    let sim_results = on_sim.delivered_results();
    let rt_results = on_rt.delivered_results();
    let sim_committed = committed_requests(&sim_results);
    let rt_committed = committed_requests(&rt_results);
    assert_eq!(sim_committed.len(), total, "every request must commit on the simulator");
    assert_eq!(sim_committed, rt_committed, "committed request sets diverged across runtimes");

    let sim_state = primary_states(&mut on_sim, 4);
    let rt_state = primary_states(&mut on_rt, 4);
    assert_eq!(sim_state, rt_state, "recovered shard state diverged across runtimes");
    let grand: i64 = rt_state.iter().flat_map(|m| m.values()).sum();
    assert_eq!(grand, 16_000, "8 conserved pairs of 2 000 apiece");

    for s in [&on_sim, &on_rt] {
        check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true })
            .assert_ok();
    }
}

// ---- threaded smoke of the read fast lane -----------------------------------

/// The consensus-free read lane on real threads: a read-heavy conserved-
/// pair mix with follower reads enabled. Reads race genuinely concurrent
/// transfers on OS threads, yet the snapshot-validation invariant holds
/// exactly as in the simulator — every delivered pair read observes a
/// conserved sum, never a half-landed transfer.
#[test]
fn threaded_read_path_preserves_snapshot_invariants() {
    let workload = Workload::ConservedPairs { pairs: 8, read_pct: 60, amount: 7 };
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 7)
        .runtime(RuntimeKind::Threaded)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(16)
        .read_path(etx::base::config::ReadPathConfig::follower_reads())
        .workload(workload.clone())
        .build();
    assert_eq!(s.runtime_kind(), RuntimeKind::Threaded);
    assert!(s.supports_fault_injection(), "the fault plane spans both backends");

    let n = s.requests as usize;
    assert_eq!(s.run_until_settled(n), etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(50));
    s.stop();

    // The lane must actually be exercised: reads either ride the fast
    // path or fall back loudly, they never vanish.
    assert!(
        s.fast_path_reads() + s.read_fallbacks() >= 1,
        "no read took the fast lane or the fallback route"
    );

    let mut reads_checked = 0usize;
    for (rid, decision) in s.delivered_results() {
        let request = workload.request(&s.topo, rid.request.client, rid.request.seq);
        if !request.script.is_read_only() {
            continue;
        }
        reads_checked += 1;
        let result = decision.result.expect("reads carry results");
        let total: i64 =
            result.entries.iter().filter(|(l, _)| l.starts_with("acct")).map(|&(_, v)| v).sum();
        assert_eq!(total, 2_000, "{rid}: fractured cross-shard read on the threaded backend");
    }
    assert!(reads_checked >= 5, "too few pair reads ({reads_checked}) to mean anything");

    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

// ---- the capability fence ---------------------------------------------------

/// Virtual time, mid-run storage reads, and deterministic replay are
/// simulator internals; a threaded scenario must refuse direct simulator
/// access loudly rather than silently no-op. (Fault injection is *not*
/// behind this fence any more — `Scenario::schedule_fault` spans both
/// backends; see the threaded_chaos suite.)
#[test]
#[should_panic(expected = "threaded backend")]
fn threaded_scenarios_reject_simulator_internals() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 1 }, 1)
        .runtime(RuntimeKind::Threaded)
        .build();
    let _ = s.sim_mut(); // must panic: no virtual time on real threads
}

/// The fault plane is backend-neutral: a threaded scenario accepts a
/// nemesis schedule and reports the capability, and a stopped host
/// refuses with a typed [`CapabilityError`] instead of a panic.
#[test]
fn threaded_scenarios_accept_fault_schedules() {
    use etx::base::fault::{FaultOp, NemesisSchedule};
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 3)
        .runtime(RuntimeKind::Threaded)
        .requests(1)
        .build();
    assert!(s.supports_fault_injection());
    let app = s.topo.app_servers[2];
    let schedule = NemesisSchedule::new()
        .at(Dur::from_millis(1), FaultOp::PauseFor { node: app, down_for: Dur::from_millis(2) });
    s.apply_schedule(&schedule).expect("threaded backend accepts nemesis schedules");
    assert_eq!(s.run_until_settled(1), etx::sim::RunOutcome::Predicate);
    s.stop();
    let err =
        s.fault(FaultOp::Pause(app)).expect_err("a stopped host cannot inject faults any more");
    let msg = err.to_string();
    assert!(msg.contains("stopped"), "error should say the host is stopped: {msg}");
}

// ---- ETX_RUNTIME precedence -------------------------------------------------

/// One precedence rule, same as every feature knob: an explicit
/// `ScenarioBuilder::runtime` call beats `ETX_RUNTIME`, which beats the
/// simulator default. (The chaos suite depends on the first clause; the
/// CI threaded sweep depends on the second.)
#[test]
fn explicit_runtime_choice_beats_the_environment() {
    // Every other test in this file pins its runtime explicitly, so this
    // process-global variable cannot leak into a concurrent build.
    std::env::set_var("ETX_RUNTIME", "threaded");
    let pinned =
        ScenarioBuilder::fast(MiddleTier::Etx { apps: 1 }, 1).runtime(RuntimeKind::Sim).build();
    assert_eq!(pinned.runtime_kind(), RuntimeKind::Sim, "explicit call must beat ETX_RUNTIME");
    assert!(pinned.supports_fault_injection());

    let mut swept = ScenarioBuilder::fast(MiddleTier::Etx { apps: 1 }, 1).build();
    assert_eq!(swept.runtime_kind(), RuntimeKind::Threaded, "ETX_RUNTIME must beat the default");
    swept.stop();
    std::env::remove_var("ETX_RUNTIME");

    let defaulted = ScenarioBuilder::fast(MiddleTier::Etx { apps: 1 }, 1).build();
    assert_eq!(defaulted.runtime_kind(), RuntimeKind::Sim, "the default backend is the simulator");
}
