//! Property tests for the shard router: the addressing layer must be a
//! *total, deterministic, stable* function — every key routes to exactly
//! one shard, identical configurations rebuild identical maps, and routed
//! plans never lose, duplicate, or misplace an operation.

use etx::base::ids::NodeId;
use etx::base::shard::{ShardMap, ShardSpec};
use etx::base::value::DbOp;
use etx::protocol::route;
use proptest::prelude::*;

fn dbs(n: u32) -> Vec<NodeId> {
    (50..50 + n).map(NodeId).collect()
}

fn arb_keys() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..10_000, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Totality + determinism: every key lands on exactly one shard, in
    /// range, and asking twice gives the same answer.
    #[test]
    fn every_key_routes_to_exactly_one_shard(
        shards in 1u32..16,
        replication in 1usize..4,
        keys in arb_keys(),
    ) {
        let servers = dbs(shards * replication as u32);
        let map = ShardMap::build(ShardSpec::Hash { shards }, &servers, replication);
        for k in &keys {
            let key = format!("acct{k}");
            let s1 = map.shard_of(&key);
            let s2 = map.shard_of(&key);
            prop_assert!(s1.0 < shards, "shard {} out of range {shards}", s1.0);
            prop_assert_eq!(s1, s2, "routing must be a function");
        }
    }

    /// Stability: rebuilding a map from the same configuration yields the
    /// same routing for every key and the same replica groups.
    #[test]
    fn routing_is_stable_across_rebuilds(
        shards in 1u32..16,
        replication in 1usize..4,
        keys in arb_keys(),
    ) {
        let servers = dbs(shards * replication as u32);
        let a = ShardMap::build(ShardSpec::Hash { shards }, &servers, replication);
        let b = ShardMap::build(ShardSpec::Hash { shards }, &servers, replication);
        prop_assert_eq!(&a, &b, "identical config must rebuild identically");
        for k in &keys {
            let key = format!("acct{k}");
            prop_assert_eq!(a.shard_of(&key), b.shard_of(&key));
        }
        for g in 0..shards {
            let s = etx::base::shard::ShardId(g);
            prop_assert_eq!(a.replicas(s), b.replicas(s));
            prop_assert_eq!(a.primary(s), b.primary(s));
        }
    }

    /// Every database server belongs to exactly one replica group.
    #[test]
    fn replica_groups_partition_the_database_tier(
        shards in 1u32..12,
        replication in 1usize..4,
    ) {
        let servers = dbs(shards * replication as u32);
        let map = ShardMap::build(ShardSpec::Hash { shards }, &servers, replication);
        for &db in &servers {
            let owner = map.shard_of_node(db);
            prop_assert!(owner.is_some(), "{db} must be in a group");
            let count = (0..shards)
                .filter(|&g| map.replicas(etx::base::shard::ShardId(g)).contains(&db))
                .count();
            prop_assert_eq!(count, 1, "{} must be in exactly one group", db);
        }
    }

    /// Routed plans partition the ops: nothing lost, nothing duplicated,
    /// every op in its own key's shard, single-shard scripts one call.
    #[test]
    fn routed_plans_partition_ops_by_shard(
        shards in 1u32..8,
        keys in arb_keys(),
    ) {
        let servers = dbs(shards);
        let map = ShardMap::build(ShardSpec::Hash { shards }, &servers, 1);
        let ops: Vec<DbOp> = keys
            .iter()
            .map(|k| DbOp::Add { key: format!("acct{k}"), delta: 1 })
            .collect();
        let plan = route(&ops, &map);
        let total: usize = plan.calls.iter().map(|c| c.ops.len()).sum();
        prop_assert_eq!(total, ops.len(), "every op routed exactly once");
        for (call, &shard) in plan.calls.iter().zip(&plan.shards) {
            prop_assert_eq!(call.db, map.primary(shard), "calls go to shard primaries");
            for op in call.ops.iter() {
                let key = op.key().expect("Add ops have keys");
                prop_assert_eq!(map.shard_of(key), shard, "op {} on wrong shard", key);
            }
        }
        let distinct: std::collections::BTreeSet<u32> =
            keys.iter().map(|k| map.shard_of(&format!("acct{k}")).0).collect();
        prop_assert_eq!(plan.calls.len(), distinct.len(), "one branch per touched shard");
        if distinct.len() == 1 {
            prop_assert_eq!(plan.calls.len(), 1, "single-shard scripts keep the fast path");
        }
    }
}
