//! The sharded back end, end to end: cross-shard e-Transactions, the
//! single-shard fast path, shard-primary loss mid-commit, intra-shard
//! replica convergence, and the hot-shard chaos scenario.

use etx::base::shard::{ShardMap, ShardSpec};
use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::harness::{
    check, run_chaos, run_hot_shard_chaos, ChaosOptions, LivenessChecks, MiddleTier,
    ScenarioBuilder, Workload,
};
use etx::sim::FaultAction;

fn sharded(
    seed: u64,
    shards: u32,
    repl: usize,
    cross_pct: u8,
    requests: u64,
) -> etx::harness::Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(shards)
        .replication(repl)
        .workload(Workload::ShardedBank { accounts: shards * 8, cross_pct, amount: 10 })
        .requests(requests)
        .build()
}

/// Sums every `acct*` key across all shard primaries' committed state.
fn total_money(s: &mut etx::harness::Scenario) -> i64 {
    (0..s.shard_map.shard_count())
        .map(|g| {
            s.rebuilt_committed(s.shard_primary(g))
                .iter()
                .filter(|(k, _)| k.starts_with("acct"))
                .map(|(_, &v)| v)
                .sum::<i64>()
        })
        .sum()
}

#[test]
fn cross_shard_transfers_commit_atomically_and_conserve_money() {
    let mut s = sharded(11, 4, 1, 100, 6);
    let initial = total_money(&mut s);
    let out = s.run_until_settled(6);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.deliveries().len(), 6, "every request delivered");
    assert!(s.cross_shard_routes() > 0, "100% transfer mix must produce cross-shard routes");
    // Transfers only move money between accounts: conservation across the
    // whole partitioned keyspace proves the multi-branch commit is atomic
    // (a half-applied transfer would create or destroy money).
    assert_eq!(total_money(&mut s), initial, "cross-shard transfers conserve total balance");
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn single_shard_transactions_keep_the_fast_path() {
    let mut s = sharded(7, 4, 1, 0, 5);
    let out = s.run_until_settled(5);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(200));
    // Every routed plan spans exactly one shard…
    let spans: Vec<u32> = s
        .trace()
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::ShardRoute { shards, .. } => Some(shards),
            _ => None,
        })
        .collect();
    assert!(!spans.is_empty());
    assert!(spans.iter().all(|&n| n == 1), "0% cross mix must stay single-shard: {spans:?}");
    // …and therefore each committed attempt was voted on by exactly one
    // database — the paper's one-database pattern, untouched by sharding.
    let mut voters_per_attempt = std::collections::BTreeMap::new();
    for e in s.trace().events() {
        if let TraceKind::DbVote { rid, .. } = e.kind {
            voters_per_attempt.entry(rid).or_insert_with(Vec::new).push(e.node);
        }
    }
    assert!(!voters_per_attempt.is_empty());
    for (rid, voters) in voters_per_attempt {
        assert_eq!(voters.len(), 1, "{rid} should have exactly one voting branch");
    }
}

#[test]
fn losing_a_shard_primary_mid_commit_still_delivers_exactly_once() {
    // A 100%-cross-shard transfer spans two shards; crash whichever branch
    // primary votes first, right after it votes (the branch is prepared
    // and in-doubt — the worst moment) and recover it later. The replica
    // group's follower keeps the shard's committed history available.
    let mut s = sharded(23, 4, 2, 100, 1);
    for g in 0..4 {
        let p = s.shard_primary(g);
        s.sim_mut().on_trace(
            move |ev| ev.node == p && matches!(ev.kind, TraceKind::DbVote { .. }),
            FaultAction::CrashRecover(p, Dur::from_millis(25)),
        );
    }
    let run = s.run_until_settled(1);
    assert_eq!(run, etx::sim::RunOutcome::Predicate, "the client must still settle");
    s.quiesce(Dur::from_millis(500));
    let deliveries = s.deliveries();
    assert_eq!(deliveries.len(), 1, "a single outcome, delivered exactly once");
    assert_eq!(deliveries[0].1, Outcome::Commit);
    let report = check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true });
    report.assert_ok();
}

#[test]
fn crashing_the_actual_voting_primary_mid_commit_terminates() {
    // Stronger variant: the crashed node is exactly the one that voted
    // first, whichever shard that is.
    for seed in [1u64, 5, 9, 14] {
        let mut s = sharded(seed, 4, 1, 100, 2);
        // One-shot trigger armed per db primary: the first to vote dies.
        for g in 0..4 {
            let p = s.shard_primary(g);
            s.sim_mut().on_trace(
                move |ev| ev.node == p && matches!(ev.kind, TraceKind::DbVote { .. }),
                FaultAction::CrashRecover(p, Dur::from_millis(30)),
            );
        }
        let run = s.run_until_settled(2);
        assert_eq!(run, etx::sim::RunOutcome::Predicate, "seed {seed} failed to settle");
        s.quiesce(Dur::from_millis(500));
        let per_request: std::collections::BTreeMap<_, usize> =
            s.deliveries().iter().fold(Default::default(), |mut m, (rid, _, _, _)| {
                *m.entry(rid.request).or_default() += 1;
                m
            });
        assert_eq!(per_request.len(), 2, "seed {seed}: both requests settled");
        assert!(per_request.values().all(|&n| n == 1), "seed {seed}: exactly-once delivery");
        check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true })
            .assert_ok();
    }
}

#[test]
fn replica_groups_converge_through_async_replication() {
    let mut s = sharded(42, 2, 3, 50, 8);
    // Cycle one follower of shard 0 mid-run: it must catch up via the
    // snapshot pull when it comes back.
    let follower = s.shard_replicas(0)[1];
    s.sim_mut().crash_at(etx::base::time::Time(5_000), follower);
    s.sim_mut().recover_at(etx::base::time::Time(60_000), follower);
    let run = s.run_until_settled(8);
    assert_eq!(run, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(800));
    for g in 0..2 {
        let primary_state = s.rebuilt_committed(s.shard_primary(g));
        let followers: Vec<_> = s.shard_replicas(g).iter().skip(1).copied().collect();
        for r in followers {
            assert_eq!(
                s.rebuilt_committed(r),
                primary_state,
                "replica {r} of shard {g} diverged from its primary"
            );
        }
    }
    assert!(
        s.trace().count_kind(|k| matches!(k, TraceKind::DbReplicated { .. })) > 0,
        "followers must have applied replicated commits"
    );
}

#[test]
fn sharded_chaos_schedules_hold_the_spec() {
    let opts = ChaosOptions {
        shards: Some(4),
        replication: 2,
        requests: 2,
        max_db_cycles: 3,
        ..ChaosOptions::default()
    };
    for seed in 0..25u64 {
        run_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn hot_shard_chaos_is_green() {
    let opts =
        ChaosOptions { shards: Some(4), replication: 2, requests: 3, ..ChaosOptions::default() };
    for seed in 0..15u64 {
        run_hot_shard_chaos(seed, &opts).assert_ok();
    }
}

#[test]
fn range_partitioning_routes_by_key_order() {
    // The ShardMap is usable directly for range-partitioned deployments.
    let dbs: Vec<_> = (0..3).map(etx::base::ids::NodeId).collect();
    let map = ShardMap::build(
        ShardSpec::Range { boundaries: vec!["acct3".into(), "acct6".into()] },
        &dbs,
        1,
    );
    assert_eq!(map.shard_of("acct1").0, 0);
    assert_eq!(map.shard_of("acct4").0, 1);
    assert_eq!(map.shard_of("acct9").0, 2);
}
