//! Speculative queue-oriented execution, end to end.
//!
//! Four families of guarantees:
//!
//! * **overlap shape** — with speculation on, flushed pipeline batches
//!   reach the shard primaries as `SpecExec` frames while their
//!   decision-log slot is still running consensus, and matching decisions
//!   promote the buffered work (`SpecHit`) instead of re-executing it;
//! * **equivalence** — the speculative pipeline commits exactly what the
//!   strict decide-then-execute pipeline commits: same delivered counts,
//!   same durable per-shard state, rebuilt from the WAL;
//! * **mis-speculation** — a decided batch that differs from the
//!   speculated one is discarded and replayed (`SpecAbort`), and the
//!   replayed values still equal the non-speculative run's;
//! * **volatility** — a speculation buffer is not state: it writes no WAL
//!   frame, ships nothing to followers, and vanishes in a crash, leaving
//!   exactly the recovery obligations of the non-speculative pipeline.

use etx::base::config::{BatchingConfig, SpeculationConfig};
use etx::base::ids::{NodeId, RequestId, ResultId};
use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::{DbOp, Outcome, Vote};
use etx::harness::{
    check, run_speculation_chaos, ChaosOptions, LivenessChecks, MiddleTier, Scenario,
    ScenarioBuilder, Workload,
};
use etx::sim::{FaultAction, RunOutcome};
use etx::store::Engine;
use proptest::prelude::*;

/// The canonical speculation workload: an open-loop burst through a deep
/// pipeline over a sharded, replicated back end. Every knob is set
/// explicitly, so the scenario means the same thing under every CI matrix
/// leg.
fn burst(seed: u64, spec: SpeculationConfig) -> Scenario {
    ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
        .shards(2)
        .replication(2)
        .clients(4)
        .requests(8)
        .batching(BatchingConfig::new(8, Dur::from_millis(1)))
        .speculation(spec)
        .workload(Workload::OpenLoopBurst { accounts: 16, amount: 1 })
        .build()
}

/// Runs a scenario to settlement, checks §3, and returns it for state
/// inspection.
fn settle(mut s: Scenario) -> Scenario {
    let expected = s.requests as usize;
    let out = s.run_until_settled(expected);
    assert_eq!(out, RunOutcome::Predicate, "every burst request must settle");
    s.quiesce(Dur::from_millis(400));
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
    s
}

#[test]
fn speculation_overlaps_consensus_and_commits_what_the_strict_pipeline_commits() {
    // Same seed, both pipelines: the speculative one must actually
    // speculate (SpecExec shipped, matching decisions promoted) and end
    // in exactly the strict pipeline's durable state. The burst workload
    // commits every request exactly once, so the final state is
    // schedule-independent — the strongest equivalence a reordering
    // optimisation can be held to.
    let mut on = settle(burst(4201, SpeculationConfig::on()));
    let mut off = settle(burst(4201, SpeculationConfig::disabled()));
    let expected = on.requests as usize;
    assert_eq!(on.delivered_commits(), expected);
    assert_eq!(off.delivered_commits(), expected);
    assert!(on.spec_execs() >= 1, "a deep open-loop burst must ship speculative batches");
    assert!(on.spec_hits() >= 1, "fault-free speculation must promote at least one batch");
    assert_eq!(off.spec_execs(), 0, "speculation off must not ship SpecExec frames");
    assert_eq!(off.spec_hits() + off.spec_aborts(), 0);
    for shard in 0..2 {
        let reference = off.rebuilt_committed(off.shard_primary(shard));
        let replicas: Vec<_> = on.shard_replicas(shard).to_vec();
        for replica in replicas {
            assert_eq!(
                on.rebuilt_committed(replica),
                reference,
                "speculative replica {replica} of shard {shard} diverged from the strict run"
            );
        }
    }
}

#[test]
fn mis_speculation_aborts_and_replays_to_the_nonspeculative_values() {
    // Force proposal races for the same decision-log slot: crash the
    // default primary the moment a database stashes its first speculative
    // batch — the proposal is mid-consensus, so a surviving replica
    // re-proposes the orphaned outcomes and the slot can decide with a
    // batch the stash does not match. Across a seed sweep at least one
    // run must take the SpecAbort path, and every run — aborted or not —
    // must still commit exactly the strict pipeline's state.
    let mut aborts = 0;
    for seed in 0..12u64 {
        let mut s = burst(4300 + seed, SpeculationConfig::on());
        let a1 = s.topo.primary();
        s.sim_mut().on_trace(
            move |ev| matches!(ev.kind, TraceKind::SpecExec { .. }),
            FaultAction::Crash(a1),
        );
        let mut s = settle(s);
        aborts += s.spec_aborts();
        let mut off = settle(burst(4300 + seed, SpeculationConfig::disabled()));
        let expected = s.requests as usize;
        assert_eq!(s.delivered_commits(), expected, "seed {seed}: every request commits");
        assert_eq!(off.delivered_commits(), expected);
        for shard in 0..2 {
            let reference = off.rebuilt_committed(off.shard_primary(shard));
            let replicas: Vec<_> = s.shard_replicas(shard).to_vec();
            for replica in replicas {
                assert_eq!(
                    s.rebuilt_committed(replica),
                    reference,
                    "seed {seed}: replica {replica} of shard {shard} diverged after replay"
                );
            }
        }
    }
    assert!(
        aborts >= 1,
        "the sweep must force at least one mis-speculation (got {aborts} SpecAborts)"
    );
}

#[test]
fn speculation_chaos_crash_between_spec_and_decide_holds_the_spec() {
    // The chaos runner cycles a shard primary the instant it stashes its
    // first speculative batch — strictly between SpecExec and the slot's
    // decision. The buffer is volatile, so the recovered primary replays
    // on the strict path; the full §3 specification must hold throughout.
    let opts = ChaosOptions {
        apps: 3,
        clients: 2,
        requests: 8,
        shards: Some(2),
        replication: 2,
        batch_size: 8,
        ..ChaosOptions::default()
    };
    let mut speculated_runs = 0;
    for seed in 0..12 {
        let out = run_speculation_chaos(seed, &opts);
        out.assert_ok();
        if out.spec_hits + out.spec_aborts > 0 {
            speculated_runs += 1;
        }
    }
    assert!(
        speculated_runs >= 6,
        "most chaos runs must actually resolve speculative batches \
         (got {speculated_runs}/12)"
    );
}

#[test]
fn crashed_speculation_buffer_leaves_no_durable_trace() {
    // Cycle shard 0's primary on its first SpecExec, before the slot
    // decides: the stash dies with the process. Afterwards every replica
    // of every shard must rebuild to the same committed state from its
    // WAL — a speculative write that had reached the log or the shipping
    // stream would break convergence.
    let mut s = burst(4400, SpeculationConfig::on());
    let victim = s.shard_primary(0);
    s.sim_mut().on_trace(
        move |ev| ev.node == victim && matches!(ev.kind, TraceKind::SpecExec { .. }),
        FaultAction::CrashRecover(victim, Dur::from_millis(10)),
    );
    let mut s = settle(s);
    assert_eq!(s.delivered_commits(), s.requests as usize);
    for shard in 0..2 {
        let reference = s.rebuilt_committed(s.shard_primary(shard));
        let followers: Vec<_> = s.shard_replicas(shard).iter().skip(1).copied().collect();
        for replica in followers {
            assert_eq!(
                s.rebuilt_committed(replica),
                reference,
                "replica {replica} of shard {shard} diverged after the speculation crash"
            );
        }
    }
}

// ---- engine-level property: speculation is invisible until promotion -------

fn rid(n: u64) -> ResultId {
    ResultId::first(RequestId { client: NodeId(0), seq: n })
}

fn arb_op() -> impl Strategy<Value = DbOp> {
    prop_oneof![
        (0..4u8, -50..50i64).prop_map(|(k, v)| DbOp::Put { key: format!("k{k}"), value: v }),
        (0..4u8, -10..10i64).prop_map(|(k, d)| DbOp::Add { key: format!("k{k}"), delta: d }),
        (0..4u8, 1..3i64).prop_map(|(k, q)| DbOp::Reserve { key: format!("k{k}"), qty: q }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random interleavings of execute/vote/speculate/decide/promote:
    /// a speculative write never reaches the committed map, the outbox,
    /// or a follower before its slot decides, and the primary's state is
    /// always exactly what a never-speculating twin holds.
    #[test]
    fn speculative_writes_never_reach_a_follower(
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(arb_op(), 1..4),
                proptest::collection::vec(arb_op(), 1..4),
                0..3u8, // 0 = no speculation, 1 = promote match, 2 = mismatch
            ),
            1..6,
        ),
    ) {
        let mut primary = Engine::new();
        let mut plain = Engine::new();
        let mut follower = Engine::new();
        for (slot, (ops_a, ops_b, mode)) in rounds.iter().enumerate() {
            let slot = slot as u64;
            let (ra, rb) = (rid(slot * 2 + 1), rid(slot * 2 + 2));
            let mut entries = Vec::new();
            for (r, ops) in [(ra, ops_a), (rb, ops_b)] {
                primary.execute(r, ops);
                plain.execute(r, ops);
                let (vote, _) = primary.vote(r);
                let (twin_vote, _) = plain.vote(r);
                prop_assert_eq!(vote, twin_vote);
                let outcome = if vote == Vote::Yes { Outcome::Commit } else { Outcome::Abort };
                entries.push((r, outcome));
            }
            if *mode > 0 {
                let before = (primary.snapshot().clone(), primary.ship_position());
                prop_assert!(primary.speculate(slot, &entries, Dur::ZERO, 4));
                // Buffered, not state: nothing committed, nothing shipped.
                prop_assert_eq!(primary.snapshot(), &before.0);
                prop_assert_eq!(primary.ship_position(), before.1);
                prop_assert!(primary.take_repl_outbox().is_empty());
            }
            // The decided batch: as speculated on a match, reversed on a
            // forced mismatch (a genuinely different slot order).
            let decided: Vec<_> = if *mode == 2 && entries.len() > 1 {
                entries.iter().rev().cloned().collect()
            } else {
                entries.clone()
            };
            match primary.promote_speculation(slot, &decided) {
                Some(_) => prop_assert!(*mode == 1),
                None => {
                    let _ = primary.decide_batch(&decided);
                }
            }
            let _ = plain.decide_batch(&decided);
            prop_assert_eq!(
                primary.snapshot(), plain.snapshot(),
                "slot {} (mode {}): speculation changed the decided state", slot, mode
            );
            // Ship to the follower: it must land exactly on the primary.
            let shipped = primary.take_repl_outbox();
            let _ = follower.apply_replicated_batch(shipped);
            prop_assert_eq!(follower.snapshot(), primary.snapshot());
        }
        prop_assert_eq!(primary.spec_slots(), 0, "every stash resolved or discarded");
    }
}

#[test]
fn inflight_cap_evictions_keep_prepay_ledger_and_buffers_in_lockstep() {
    // A cap of one slot forces an eviction on every overlapping proposal:
    // each new SpecExec throws out the previous slot's buffer, and the
    // pre-paid device instant must go with it. A ledger that survives its
    // buffer would either ack a later promotion against a stale instant
    // or leak entries on never-decided slots; a buffer that survives its
    // ledger entry would promote with no pre-paid time at all. Under the
    // churn, the pipeline must still settle every request and end in the
    // strict pipeline's exact durable state.
    let capped = SpeculationConfig { enabled: true, max_inflight_slots: 1 };
    let mut on = settle(burst(907, capped));
    let mut off = settle(burst(907, SpeculationConfig::disabled()));
    let expected = on.requests as usize;
    assert_eq!(on.delivered_commits(), expected);
    assert_eq!(off.delivered_commits(), expected);
    assert!(on.spec_execs() >= 1, "the capped burst must still ship speculative batches");
    for shard in 0..2 {
        let reference = off.rebuilt_committed(off.shard_primary(shard));
        let replicas: Vec<_> = on.shard_replicas(shard).to_vec();
        for replica in replicas {
            assert_eq!(
                on.rebuilt_committed(replica),
                reference,
                "cap-evicted replica {replica} of shard {shard} diverged from the strict run"
            );
        }
    }
}
