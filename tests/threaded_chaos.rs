//! Real fault injection on the threaded runtime, with the §3 checker as
//! judge.
//!
//! The simulator's chaos suite proves the *protocol* tolerates faults
//! under a deterministic schedule; this suite proves the *implementation*
//! tolerates them on real OS threads: killed threads whose stable logs
//! survive into recovery, parked threads whose leases lapse while they
//! sleep, links that stop carrying traffic, partitions that heal. Every scenario
//! here pins `RuntimeKind::Threaded` explicitly (except the two-backend
//! watchdog test), injects through the backend-neutral fault plane
//! (`Scenario::schedule_fault` / `FaultOp`), and hands the resulting
//! history to the same §3 checker the simulator answers to.

use etx::base::config::{
    BatchingConfig, FeatureSet, PipelineConfig, ProtocolConfig, ReadLeaseConfig, ReadPathConfig,
};
use etx::base::fault::{FaultOp, NemesisWhen};
use etx::base::runtime::RuntimeKind;
use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::harness::{
    check, run_hot_shard_chaos_on, run_mid_batch_chaos_on, run_speculation_chaos_on, ChaosOptions,
    LivenessChecks, MiddleTier, ScenarioBuilder, Workload,
};
use etx::sim::RunOutcome;

// ---- the acceptance scenario: crash a shard primary mid-group-append --------

/// Kill shard 0's primary database — a real OS thread — the moment it
/// frames a multi-record group WAL append, and bring it back 20 ms later.
/// The crash must lose the thread's volatile state but not its `LogStore`;
/// recovery replays the half-termination group frame; and the final state
/// of every replica equals the fault-free reference run's. (The burst
/// workload commits every request exactly once, so its final state is
/// schedule-independent — the simulator's fault-free run is a valid
/// reference for the threaded faulted one.)
#[test]
fn group_append_crash_on_threads_recovers_to_the_fault_free_state() {
    let seed = 0xC4A0;
    let build = |kind: RuntimeKind| {
        ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, seed)
            .runtime(kind)
            .shards(2)
            .replication(2)
            .clients(4)
            .requests(8)
            .batching(BatchingConfig::new(8, Dur::from_millis(1)))
            .workload(Workload::OpenLoopBurst { accounts: 16, amount: 1 })
            .build()
    };

    let mut reference = build(RuntimeKind::Sim);
    let n = reference.requests as usize;
    assert_eq!(reference.run_until_settled(n), RunOutcome::Predicate);
    reference.quiesce(Dur::from_millis(400));

    let mut s = build(RuntimeKind::Threaded);
    let victim = s.shard_primary(0);
    s.schedule_fault(
        NemesisWhen::on_trace(move |ev| {
            ev.node == victim && matches!(ev.kind, TraceKind::GroupAppend { len } if len >= 2)
        }),
        FaultOp::CrashFor { node: victim, down_for: Dur::from_millis(20) },
    )
    .expect("the threaded backend supports fault injection");

    assert_eq!(
        s.run_until_settled(n),
        RunOutcome::Predicate,
        "every request must settle despite the mid-batch crash"
    );
    s.quiesce(Dur::from_millis(400));
    s.stop();

    // The crash genuinely happened (the trigger is armed once)...
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Crash)), 1, "no crash fired");
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Recover)), 1, "no recovery");

    // ...the §3 checker is the judge...
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();

    // ...and the recovered primary (plus every other replica) rebuilds
    // from its surviving WAL to the fault-free committed state.
    for shard in 0..2 {
        let expect = reference.rebuilt_committed(reference.shard_primary(shard));
        for replica in s.shard_replicas(shard).to_vec() {
            assert_eq!(
                s.rebuilt_committed(replica),
                expect,
                "replica {replica} of shard {shard} diverged from the fault-free run"
            );
        }
    }
}

// ---- pause: a parked lease holder must fall out of lease --------------------

/// Park a lease-holding follower's OS thread (the SIGSTOP story) for many
/// lease terms, triggered by the first lease grant. While parked it
/// cannot serve, and by the time it resumes its lease has long lapsed —
/// the backlog it drains must not include in-lease serves from the stale
/// grant. Reads routed at it meanwhile fall to the retry backstop and the
/// primary. The §3 checker (read-your-writes included) judges the result.
#[test]
fn paused_lease_holder_expires_while_parked_and_stays_safe() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0x1EA5)
        .runtime(RuntimeKind::Threaded)
        .shards(2)
        .replication(2)
        .clients(2)
        .requests(8)
        .read_path(ReadPathConfig::follower_reads())
        .read_leases(ReadLeaseConfig::fast_for_tests())
        .workload(Workload::ReadAfterWrite { accounts: 16, amount: 10 })
        .build();

    let parked = s.shard_replicas(0)[1];
    s.schedule_fault(
        NemesisWhen::on_trace(|ev| matches!(ev.kind, TraceKind::LeaseGrant { .. })),
        FaultOp::PauseFor { node: parked, down_for: Dur::from_millis(25) },
    )
    .expect("the threaded backend supports fault injection");

    let n = s.requests as usize;
    assert_eq!(
        s.run_until_settled(n),
        RunOutcome::Predicate,
        "reads must settle around the parked follower"
    );
    s.quiesce(Dur::from_millis(400));
    s.stop();

    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Pause)), 1, "no pause fired");
    assert_eq!(s.trace().count_kind(|k| matches!(k, TraceKind::Resume)), 1, "no resume fired");
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

// ---- partition: during an open pipeline window, with a backoff ceiling ------

/// Partition the proposing application server away from its two peers the
/// moment the decision log has ≥ 2 undecided slots in flight. Its open
/// rounds stall until the partition heals; the majority side keeps
/// serving; clients that went wide retransmit under the bounded back-off
/// ceiling (base 20 ms doubling to 160 ms) instead of flooding the
/// partition at full cadence. Everything must settle once healed, and §3
/// must hold across the stalled window.
///
/// Whether the window actually opens ≥ 2 slots before the burst settles
/// depends on real thread scheduling, so the scenario retries across
/// seeds: every attempt must settle with §3 green (partitioned or not),
/// and at least one attempt must genuinely catch an open window and
/// interrupt traffic at the partitioned links.
#[test]
fn partition_during_open_pipeline_window_heals_and_settles() {
    // The fast-test protocol profile, plus a real back-off ceiling (the
    // stock profiles keep base == max, i.e. the paper's flat cadence).
    let pcfg = ProtocolConfig {
        client_backoff: Dur::from_millis(30),
        client_rebroadcast: Dur::from_millis(20),
        client_rebroadcast_max: Dur::from_millis(160),
        terminate_retry: Dur::from_millis(10),
        cleaner_interval: Dur::from_millis(5),
        consensus_resync: Dur::from_millis(8),
        consensus_round_patience: Dur::from_millis(4),
        route_to_last_responder: false,
        features: FeatureSet::default(),
    };
    let mut exercised = false;
    for attempt in 0u64..6 {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 0xB1BE + attempt)
            .runtime(RuntimeKind::Threaded)
            .protocol(pcfg.clone())
            .shards(2)
            .replication(2)
            .clients(8)
            .requests(4)
            .batching(BatchingConfig::new(2, Dur::from_millis(1)))
            .pipeline(PipelineConfig::new(4))
            .workload(Workload::OpenLoopBurst { accounts: 16, amount: 1 })
            .build();

        let a1 = s.topo.primary();
        let peers: Vec<_> = s.topo.app_servers.iter().copied().filter(|&a| a != a1).collect();
        s.schedule_fault(
            NemesisWhen::on_trace(move |ev| {
                ev.node == a1 && matches!(ev.kind, TraceKind::PipelineWindow { open } if open >= 2)
            }),
            FaultOp::Partition { a: vec![a1], b: peers, heal_after: Dur::from_millis(60) },
        )
        .expect("the threaded backend supports fault injection");

        let n = s.requests as usize;
        assert_eq!(
            s.run_until_settled(n),
            RunOutcome::Predicate,
            "the run must settle after the partition heals"
        );
        s.quiesce(Dur::from_millis(400));
        s.stop();
        check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true })
            .assert_ok();

        if s.pipeline_window_peak() >= 2 && s.stats().dropped_on_link() > 0 {
            exercised = true;
            break;
        }
    }
    assert!(
        exercised,
        "no attempt partitioned an actually-open pipeline window with real dropped traffic"
    );
}

// ---- the watchdog: a wedged run times out on either backend -----------------

/// Pause the entire middle tier before the first message: no application
/// server can ever answer, so the run cannot settle. Both backends must
/// return `RunOutcome::TimeLimit` at the scenario's `wall_limit` — the
/// threaded host on its wall-clock watchdog, the simulator on its
/// virtual-time stop — rather than hanging the test process.
#[test]
fn wedged_runs_return_time_limit_on_both_backends() {
    for kind in [RuntimeKind::Sim, RuntimeKind::Threaded] {
        let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 9)
            .runtime(kind)
            .wall_limit(Dur::from_millis(80))
            .requests(1)
            .build();
        let apps = s.topo.app_servers.clone();
        for app in apps {
            s.fault(FaultOp::Pause(app)).expect("both backends support the fault plane");
        }
        let out = s.run_until_settled(1);
        assert_eq!(
            out,
            RunOutcome::TimeLimit,
            "a wedged {} run must time out, not hang",
            kind.label()
        );
        s.stop();
    }
}

// ---- the ported chaos runners, on real threads ------------------------------

/// The same nemesis schedules the simulator chaos suite runs — hot-shard
/// crash/recovery cycles, the mid-batch primary kill, the speculation-
/// buffer wipe — executed against the threaded host, each judged by the
/// full §3 checker. One schedule, two backends.
#[test]
fn chaos_runners_pass_the_spec_on_real_threads() {
    let opts = ChaosOptions {
        apps: 3,
        clients: 2,
        requests: 4,
        shards: Some(2),
        replication: 2,
        batch_size: 4,
        ..ChaosOptions::default()
    };
    run_mid_batch_chaos_on(11, &opts, RuntimeKind::Threaded).assert_ok();
    run_hot_shard_chaos_on(12, &opts, RuntimeKind::Threaded).assert_ok();
    run_speculation_chaos_on(13, &opts, RuntimeKind::Threaded).assert_ok();
}
