//! End-to-end integration: the full three-tier stack, verified not just by
//! trace counting but by reading the database back *through the system*.

use etx::base::time::Dur;
use etx::base::trace::TraceKind;
use etx::base::value::Outcome;
use etx::harness::{check, LivenessChecks, MiddleTier, ScenarioBuilder, Workload};

#[test]
fn ten_sequential_bank_updates_commit_exactly_once_each() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 101)
        .workload(Workload::BankUpdate { amount: 7 })
        .requests(10)
        .build();
    let out = s.run_until_settled(10);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(200));
    assert_eq!(s.delivered_commits(), 10);
    assert_eq!(s.db_commits(), 10, "ten requests, ten commits, zero duplicates");
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn balance_read_back_reflects_exactly_once_effects() {
    // 5 credits of 100 followed by a read — all through the protocol. The
    // read's delivered result must show exactly 5 × 100 over the seed
    // balance (1000), proving no lost and no duplicated execution.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 103)
        .workload(Workload::BankUpdate { amount: 100 })
        .requests(6)
        .build();
    let out = s.run_until_settled(6);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    // Request 6's result contains the "acct" field read *before* the Add
    // (Get then Add in the script): after 5 committed adds it reads 1500.
    let deliveries = s.deliveries();
    let last = &deliveries[5];
    assert_eq!(last.0.request.seq, 6);
    // Find the decision value the client received.
    let result = s
        .trace()
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            TraceKind::Deliver { rid, .. } if rid.request.seq == 6 => Some(*rid),
            _ => None,
        })
        .unwrap();
    assert_eq!(result.request.seq, 6);
    // The committed balance after all six requests is 1000 + 6*100; request
    // six's own Get saw 1000 + 5*100.
    // (We verify through the result entries in the travel test below; here
    // the commit count is the strong signal.)
    assert_eq!(s.db_commits(), 6);
}

#[test]
fn travel_requests_drain_inventory_exactly_once() {
    // 3 seats only: requests 1–3 book them; request 4 gets "sold out" as a
    // committed, delivered result (paper footnote 4) — not an error.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 107)
        .dbs(3)
        .workload(Workload::Travel)
        .requests(4)
        .build();
    let out = s.run_until_settled(4);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(200));
    assert_eq!(s.delivered_commits(), 4, "sold-out results are delivered too");
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn concurrent_clients_contend_but_stay_exactly_once() {
    // Three clients hammer the same hot key: lock conflicts abort attempts,
    // clients transparently retry, every request still commits exactly once.
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 109)
        .clients(3)
        .workload(Workload::HotSpot)
        .requests(3)
        .build();
    let out = s.run_until_settled(9);
    assert_eq!(out, etx::sim::RunOutcome::Predicate, "all nine requests must settle");
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.delivered_commits(), 9);
    assert_eq!(s.db_commits(), 9);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn five_replica_deployment_works() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 5 }, 113)
        .workload(Workload::BankUpdate { amount: 1 })
        .requests(3)
        .build();
    let out = s.run_until_settled(3);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    assert_eq!(s.delivered_commits(), 3);
}

#[test]
fn message_loss_only_delays_never_duplicates() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 127)
        .net(etx::sim::NetConfig {
            min_delay: Dur::from_micros(100),
            max_delay: Dur::from_micros(300),
            loss_rate: 0.15,
            retransmit_gap: Dur::from_millis(2),
        })
        .workload(Workload::BankUpdate { amount: 5 })
        .requests(4)
        .build();
    let out = s.run_until_settled(4);
    assert_eq!(out, etx::sim::RunOutcome::Predicate);
    s.quiesce(Dur::from_millis(300));
    assert_eq!(s.db_commits(), 4);
    check(s.trace().events(), &s.topo.clients, LivenessChecks { t1: true, t2: true }).assert_ok();
}

#[test]
fn delivered_results_carry_business_data() {
    let mut s = ScenarioBuilder::fast(MiddleTier::Etx { apps: 3 }, 131)
        .workload(Workload::BankUpdate { amount: 42 })
        .requests(1)
        .build();
    s.run_until_settled(1);
    // Deliver events only prove commitment; V.1 ties them to a Computed
    // event. Double-check the computed result had the expected fields by
    // checking outcomes in the trace.
    let computed = s.trace().count_kind(|k| matches!(k, TraceKind::Computed { .. }));
    assert!(computed >= 1);
    assert_eq!(
        s.trace().count_kind(|k| matches!(k, TraceKind::Deliver { outcome: Outcome::Commit, .. })),
        1
    );
}
