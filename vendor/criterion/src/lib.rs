//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build container has no registry access, so this shim provides the
//! subset of the criterion API that the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! warm-up + fixed-duration sample loop reporting mean/min/max per
//! iteration — good enough for coarse regression spotting, not for
//! statistics. Swap the workspace `criterion` path dependency back to the
//! real crate when a registry is available; no bench source changes needed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim only distinguishes
/// batch sizes by how many routine calls share one measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-iteration timing collector handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher { samples: Vec::new(), budget }
    }

    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few unmeasured calls so lazy init doesn't pollute.
        for _ in 0..3 {
            black_box(routine());
        }
        let window = Instant::now();
        while window.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let window = Instant::now();
        while window.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Like `iter_batched` but the routine takes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..3 {
            black_box(routine(&mut setup()));
        }
        let window = Instant::now();
        while window.elapsed() < self.budget {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep CI cheap: the real criterion defaults to 5 s per bench.
        Criterion { measurement_time: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Run any deferred reporting. The shim reports eagerly, so this is a
    /// no-op kept for `criterion_main!` compatibility.
    pub fn final_summary(&mut self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declare a bench group: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declare the bench binary's `main`: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
