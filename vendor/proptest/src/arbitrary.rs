//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// `any::<T>()` mirrors `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Whole finite domain (both signs, all magnitudes), matching real
        // proptest's default of excluding NaN and the infinities.
        loop {
            let x = f64::from_bits(rng.next_u64());
            if x.is_finite() {
                return x;
            }
        }
    }
}
