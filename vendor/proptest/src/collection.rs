//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for collection strategies: an exact size, `a..b`,
/// or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_excl: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max_excl: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max_excl: r.end().saturating_add(1) }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element_strategy, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_excl - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
