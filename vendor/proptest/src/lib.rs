//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build container has no registry access, so this shim implements the
//! subset of the proptest API the workspace uses, with the same surface
//! syntax (`proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`,
//! `Just`, `any`, `proptest::collection::vec`, `ProptestConfig`) so the
//! test sources compile unchanged against the real crate when a registry
//! is available.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic by default.** Case seeds are derived from the test
//!   name via a fixed hash, so every run explores the same inputs. Set
//!   `PROPTEST_RNG_SEED` to explore a different universe, and
//!   `PROPTEST_CASES` to override the per-test case count.
//! * **No shrinking.** On failure the exact failing input and its case
//!   seed are printed, and the seed is persisted to the regression corpus
//!   (`tests/proptest-regressions/<file>.txt` next to the test source's
//!   crate). Corpus seeds are replayed before fresh cases on every run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Mirrors `proptest::proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..100, flip in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    ( $($strat,)+ ),
                    |( $($arg,)+ )| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both: `{:?}`)", format!($($fmt)*), l);
    }};
}
