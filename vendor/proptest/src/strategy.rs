//! Value-generation strategies: the `Strategy` trait and the combinators
//! the workspace uses (ranges, `Just`, `prop_map`, tuples, unions).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly, which keeps the shim tiny while
/// preserving determinism (same seed, same value).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe shadow of [`Strategy`] so heterogeneous strategies can be
/// unified behind one value type (for `prop_oneof!` / `BoxedStrategy`).
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                // A full-domain u64/i64 range has span 2^64, which a u64
                // cannot hold; sample the raw stream instead.
                let span = *self.end() as i128 - *self.start() as i128 + 1;
                let offset = if span > u64::MAX as i128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}
