//! Deterministic case runner with a persisted regression corpus.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;

/// Why a property case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Mirrors `proptest::test_runner::Config`. Only `cases` is honoured; the
/// other fields exist so `..ProptestConfig::default()` struct-update syntax
/// from real-proptest call sites compiles unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of fresh cases to run (after corpus replay).
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never forks.
    pub fork: bool,
    /// Accepted for compatibility; cases are never timed out.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, fork: false, timeout: 0 }
    }
}

/// Deterministic splitmix64 stream — the shim's only entropy source.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for the small
        // ranges property tests use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `tests/proptest-regressions/<source-file-stem>.txt` next to the crate
/// whose test expanded the `proptest!` macro.
fn corpus_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    Path::new(manifest_dir).join("tests").join("proptest-regressions").join(format!("{stem}.txt"))
}

/// Corpus lines: `cc <test_name> 0x<seed-hex>`; `#` starts a comment.
fn corpus_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else { return Vec::new() };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        if parts.next() != Some(test_name) {
            continue;
        }
        if let Some(hex) = parts.next() {
            let hex = hex.strip_prefix("0x").unwrap_or(hex);
            if let Ok(seed) = u64::from_str_radix(hex, 16) {
                if !seeds.contains(&seed) {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

/// Best-effort (a read-only checkout must not turn a clear assertion
/// failure into an I/O panic); returns whether the seed is now on disk.
/// Appends rather than rewriting so concurrently-failing tests sharing one
/// corpus file cannot clobber each other's lines.
fn persist_failure(path: &Path, test_name: &str, seed: u64) -> bool {
    use std::io::Write as _;

    if corpus_seeds(path, test_name).contains(&seed) {
        return true;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let header = if path.exists() {
        String::new()
    } else {
        "# Seeds for failure cases found by the proptest shim. It is\n\
         # automatically read and these particular cases re-run before any\n\
         # novel cases are generated. Lines: cc <test_name> 0x<seed>\n"
            .to_owned()
    };
    let line = format!("{header}cc {test_name} 0x{seed:016x}\n");
    fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
        .is_ok()
}

/// Parse an env override as decimal or `0x`-prefixed hex (the shim prints
/// seeds in hex, so that form must round-trip). Unset → None; set but
/// unparseable → panic, never a silent fallback.
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw:?} is not a u64 (decimal or 0x-prefixed hex)"),
    }
}

/// Run one `proptest!`-declared property: replay the regression corpus,
/// then `config.cases` fresh deterministic cases. Panics on first failure
/// after persisting its seed.
pub fn run<S, F>(
    config: &ProptestConfig,
    test_name: &str,
    manifest_dir: &str,
    source_file: &str,
    strategy: S,
    test: F,
) where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = match env_u64("PROPTEST_CASES") {
        Some(n) => u32::try_from(n).unwrap_or_else(|_| panic!("PROPTEST_CASES={n} exceeds u32")),
        None => config.cases,
    };
    let universe = env_u64("PROPTEST_RNG_SEED").unwrap_or(0);
    let corpus = corpus_path(manifest_dir, source_file);
    let base = fnv1a(test_name.as_bytes()) ^ universe;

    let replay = corpus_seeds(&corpus, test_name);
    let fresh = (0..cases as u64).map(|i| base.wrapping_add(i.wrapping_mul(0xA076_1D64_78BD_642F)));
    for (kind, seed) in replay.into_iter().map(|s| ("corpus", s)).chain(fresh.map(|s| ("fresh", s)))
    {
        let mut rng = TestRng::new(seed);
        let value = strategy.generate(&mut rng);
        if let Err(err) = test(value) {
            // Re-generate for the report; `test` consumed the value.
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            let disposition = if kind == "corpus" {
                "already in corpus".to_owned()
            } else if persist_failure(&corpus, test_name, seed) {
                format!("persisted to {}", corpus.display())
            } else {
                format!("could NOT be persisted to {} — record it by hand", corpus.display())
            };
            panic!(
                "proptest case failed ({kind} seed 0x{seed:016x}, {disposition}):\n\
                 input: {value:#?}\n{err}"
            );
        }
    }
}
